//! The micro-batching classification service (see the crate docs for the
//! request lifecycle, determinism guarantees and failure model).

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use blurnet::queue::{BoundedQueue, PopTimeout, TryPush};
use blurnet_defenses::DefendedModel;
use blurnet_nn::BatchEngine;
use blurnet_tensor::Tensor;

use crate::{Result, ServeError};

/// How often the supervisor polls its threads for unexpected deaths.
const SUPERVISOR_POLL: Duration = Duration::from_micros(500);

/// How many thread deaths one flight survives (by re-enqueueing) before
/// its remaining requests are answered with errors instead of retried —
/// the backstop against a fault that kills every thread that touches the
/// batch.
const MAX_FLIGHT_DEATHS: u32 = 2;

/// Tuning knobs for one [`ClassifyService`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeConfig {
    /// Size-triggered flush: a batch is dispatched as soon as it holds
    /// this many requests (clamped to at least 1).
    pub max_batch: usize,
    /// Deadline-triggered flush: a batch is dispatched at most this long
    /// after its first request arrived, however full it is. A zero window
    /// still coalesces whatever is already waiting in the admission queue.
    pub flush_window: Duration,
    /// Batch workers draining the flushed batches. Each owns a prepacked
    /// [`BatchEngine`] over the shared read-only weights; the engines'
    /// intra-batch sharding additionally uses the ambient persistent rayon
    /// pool (`RAYON_NUM_THREADS`).
    pub workers: usize,
    /// Admission queue capacity: how many requests may wait to be batched
    /// before [`ServeClient::submit`] back-pressures (blocks) its caller —
    /// or, with [`ServeConfig::shed`], rejects with
    /// [`ServeError::QueueFull`].
    pub queue_depth: usize,
    /// Load shedding: when set, a full admission queue **rejects** the
    /// request with [`ServeError::QueueFull`] instead of blocking the
    /// submitter — overload turns into explicit, retryable errors rather
    /// than unbounded client-side waiting.
    pub shed: bool,
    /// Per-request deadline, measured from admission. A request still
    /// queued when its deadline passes is answered with
    /// [`ServeError::DeadlineExceeded`] instead of being evaluated, so a
    /// backlog cannot grow stale answers. `None` disables deadlines.
    pub deadline: Option<Duration>,
}

impl Default for ServeConfig {
    /// The "flush at batch 32 or 2 ms" profile from the roadmap, one batch
    /// worker, a 1024-request admission window, blocking admission, no
    /// deadlines.
    fn default() -> Self {
        ServeConfig {
            max_batch: 32,
            flush_window: Duration::from_millis(2),
            workers: 1,
            queue_depth: 1024,
            shed: false,
            deadline: None,
        }
    }
}

/// The defense's per-request verdict, alongside the classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DefenseVerdict {
    /// The defended and raw predictions agree (or the defense has no
    /// input-space preprocessing to compare against).
    Clean,
    /// The defense's input preprocessing **changed the prediction** — the
    /// input is sensitive to exactly the high-frequency structure the
    /// filter removes, the signature of a sticker-style perturbation.
    Flagged,
}

/// One classification response.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Classification {
    /// Predicted class index (argmax over the defended logits).
    pub label: usize,
    /// Softmax probability of the predicted class.
    pub confidence: f32,
    /// Whether the defense flagged the input (see [`DefenseVerdict`]).
    pub verdict: DefenseVerdict,
}

/// What the service knows about its model, for clients and the wire
/// handshake.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModelInfo {
    /// Number of output classes.
    pub classes: usize,
    /// Expected image shape, `[channels, height, width]`.
    pub input_dims: [usize; 3],
    /// Human-readable label of the defense variant being served.
    pub defense: String,
}

impl ModelInfo {
    /// Number of `f32` elements in one request image.
    pub fn elements(&self) -> usize {
        self.input_dims.iter().product()
    }
}

/// Recovery telemetry: how many service threads died and were respawned
/// since startup. A healthy, undisturbed service reports zeros.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServiceHealth {
    /// Batcher threads respawned after a panic.
    pub batcher_restarts: usize,
    /// Batch worker threads respawned after a panic.
    pub worker_restarts: usize,
}

/// A pending response: block on [`Ticket::wait`] to receive it.
#[derive(Debug)]
pub struct Ticket {
    rx: Receiver<Result<Classification>>,
}

impl Ticket {
    /// Blocks until the service answers this request.
    ///
    /// # Errors
    ///
    /// Propagates the worker's error, or [`ServeError::Shutdown`] if the
    /// service died before answering.
    pub fn wait(self) -> Result<Classification> {
        self.rx
            .recv()
            .map_err(|_| ServeError::Shutdown("service dropped the request".into()))?
    }
}

/// One queued request: the image, where to send its answer, and when the
/// answer stops being worth computing.
struct Pending {
    image: Tensor,
    reply: SyncSender<Result<Classification>>,
    deadline: Option<Instant>,
}

impl Pending {
    /// Whether the request's deadline has passed.
    fn expired(&self, now: Instant) -> bool {
        self.deadline.is_some_and(|d| now > d)
    }
}

/// A flushed batch in flight between the batcher and a worker, carrying
/// its survival bookkeeping.
struct Flight {
    pendings: Vec<Pending>,
    /// Service-thread deaths this flight has already survived.
    deaths: u32,
}

/// Drop-guard that turns a service-thread panic into **per-request
/// recovery** instead of silently dropped reply channels: if the guard is
/// dropped while its thread is unwinding, the un-answered requests are
/// re-enqueued onto the batch queue for another worker (up to
/// [`MAX_FLIGHT_DEATHS`] times), and answered with an explicit
/// [`ServeError::Worker`] error once the retry budget is spent.
struct FlightGuard {
    flight: Option<Flight>,
    batches: Arc<BoundedQueue<Flight>>,
}

impl FlightGuard {
    fn new(flight: Flight, batches: Arc<BoundedQueue<Flight>>) -> Self {
        FlightGuard {
            flight: Some(flight),
            batches,
        }
    }

    /// Takes the flight out of the guard; the drop becomes a no-op.
    fn disarm(mut self) -> Flight {
        self.flight.take().expect("flight taken once")
    }

    /// Appends a request to the in-flight batch (batcher side).
    fn push(&mut self, pending: Pending) {
        self.flight
            .as_mut()
            .expect("flight present while coalescing")
            .pendings
            .push(pending);
    }

    /// Number of requests currently aboard.
    fn len(&self) -> usize {
        self.flight.as_ref().map_or(0, |f| f.pendings.len())
    }
}

impl Drop for FlightGuard {
    fn drop(&mut self) {
        let Some(mut flight) = self.flight.take() else {
            return;
        };
        if flight.pendings.is_empty() {
            return;
        }
        flight.deaths += 1;
        if flight.deaths <= MAX_FLIGHT_DEATHS {
            // Hand the batch to a surviving (or respawned) worker. The
            // push only genuinely fails once the batch queue has closed —
            // ride out fault-injected spurious refusals.
            let mut item = flight;
            loop {
                match self.batches.push(item) {
                    Ok(()) => return,
                    Err(back) => {
                        if self.batches.is_closed() {
                            item = back;
                            break;
                        }
                        item = back;
                    }
                }
            }
            flight = item;
        }
        let msg = format!(
            "a service thread died while handling this batch ({} deaths)",
            flight.deaths
        );
        for pending in flight.pendings {
            let _ = pending.reply.send(Err(ServeError::Worker(msg.clone())));
        }
    }
}

/// Admission policy shared by every client handle of a service.
#[derive(Debug, Clone, Copy)]
struct AdmissionPolicy {
    shed: bool,
    deadline: Option<Duration>,
}

/// A cheap, cloneable handle for submitting requests to a running
/// [`ClassifyService`] from any thread.
#[derive(Debug, Clone)]
pub struct ServeClient {
    admission: Arc<BoundedQueue<Pending>>,
    info: ModelInfo,
    policy: AdmissionPolicy,
}

impl ServeClient {
    /// The served model's metadata.
    pub fn info(&self) -> &ModelInfo {
        &self.info
    }

    /// Submits one `[C, H, W]` image and returns a [`Ticket`] for the
    /// response. With blocking admission (the default) a full queue
    /// back-pressures the caller; with [`ServeConfig::shed`] it rejects
    /// immediately.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::BadInput`] for a wrong image shape or a
    /// non-finite (NaN/Inf) value, [`ServeError::QueueFull`] when
    /// shedding, and [`ServeError::Shutdown`] once the service is
    /// shutting down.
    pub fn submit(&self, image: Tensor) -> Result<Ticket> {
        if image.dims() != self.info.input_dims.as_slice() {
            return Err(ServeError::BadInput(format!(
                "expected a {:?} image, got {:?}",
                self.info.input_dims,
                image.dims()
            )));
        }
        // Reject NaN/Inf before they reach the engine: a non-finite pixel
        // propagates through every layer and can poison a whole coalesced
        // batch's worth of compute for an answer that is garbage anyway.
        if image.data().iter().any(|v| !v.is_finite()) {
            return Err(ServeError::BadInput(
                "image contains non-finite (NaN/Inf) values".into(),
            ));
        }
        let (reply, rx) = sync_channel(1);
        let pending = Pending {
            image,
            reply,
            deadline: self.policy.deadline.map(|d| Instant::now() + d),
        };
        if self.policy.shed {
            match self.admission.try_push(pending) {
                TryPush::Pushed => {}
                TryPush::Full(_) => return Err(ServeError::QueueFull),
                TryPush::Closed(_) => {
                    return Err(ServeError::Shutdown("admission queue closed".into()))
                }
            }
        } else {
            // Blocking admission. A refusal from an open queue is a
            // fault-injected spurious one — retry; only a genuinely
            // closed queue is shutdown.
            let mut item = pending;
            loop {
                match self.admission.push(item) {
                    Ok(()) => break,
                    Err(back) => {
                        if self.admission.is_closed() {
                            return Err(ServeError::Shutdown("admission queue closed".into()));
                        }
                        item = back;
                    }
                }
            }
        }
        Ok(Ticket { rx })
    }

    /// Submits one image and blocks for its classification.
    ///
    /// # Errors
    ///
    /// Propagates [`ServeClient::submit`] and [`Ticket::wait`] errors.
    pub fn classify(&self, image: Tensor) -> Result<Classification> {
        self.submit(image)?.wait()
    }
}

/// Context shared by the batcher, the workers and the supervisor.
struct Shared {
    model: Arc<DefendedModel>,
    admission: Arc<BoundedQueue<Pending>>,
    batches: Arc<BoundedQueue<Flight>>,
    max_batch: usize,
    window: Duration,
    batcher_restarts: AtomicUsize,
    worker_restarts: AtomicUsize,
    shutting_down: AtomicBool,
}

/// Which service thread a supervisor slot watches.
#[derive(Debug, Clone, Copy)]
enum Role {
    Batcher,
    Worker(usize),
}

/// One supervised thread.
struct Slot {
    role: Role,
    handle: JoinHandle<()>,
}

/// The long-running micro-batching service. Build with
/// [`ClassifyService::new`], hand [`ServeClient`]s to request producers,
/// and call [`ClassifyService::shutdown`] (or drop) to drain and stop.
///
/// # Failure model
///
/// The batcher and every batch worker run under a **supervisor** thread:
/// a panic in any of them is detected mid-run (not at shutdown join), the
/// dead thread is respawned, and the batch it was holding is re-enqueued
/// for a surviving worker (see [`ServiceHealth`]). A request that
/// deterministically panics the forward pass is isolated by bisecting its
/// batch: only the poisoned request receives an error, its batch-mates
/// are recomputed in sub-batches and — because the engine is bit-identical
/// at every batch composition — return exactly the bytes they would have
/// without the poison.
#[derive(Debug)]
pub struct ClassifyService {
    shared: Arc<SharedHandle>,
    supervisor: Option<JoinHandle<()>>,
    info: ModelInfo,
    policy: AdmissionPolicy,
}

/// Newtype so `ClassifyService` can derive `Debug` without exposing the
/// whole shared state.
struct SharedHandle(Arc<Shared>);

impl std::fmt::Debug for SharedHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Shared")
            .field("admission", &self.0.admission)
            .field("batches", &self.0.batches)
            .finish()
    }
}

impl ClassifyService {
    /// Starts the service over a shared trained model: one batcher thread
    /// plus [`ServeConfig::workers`] batch workers, each with its own
    /// prepacked engine over the shared read-only weights, all watched by
    /// a supervisor thread that respawns them on panic.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::BadConfig`] if the model's inference path is
    /// not a pure per-image function (randomized smoothing), which would
    /// break the micro-batched ≡ single-request bit-identity guarantee,
    /// or if the network is empty.
    pub fn new(model: Arc<DefendedModel>, config: ServeConfig) -> Result<Self> {
        if !model.deterministic_inference() {
            return Err(ServeError::BadConfig(format!(
                "defense {} draws from a stateful RNG at inference time; its responses would \
                 depend on request arrival order, so it cannot be served through the \
                 micro-batching path",
                model.defense().label()
            )));
        }
        // Fail fast on an unbuildable engine instead of inside a worker.
        BatchEngine::new(model.network()).map_err(|e| ServeError::BadConfig(e.to_string()))?;

        let worker_count = config.workers.max(1);
        let info = ModelInfo {
            classes: model.arch().num_classes,
            input_dims: [
                model.arch().in_channels,
                model.arch().input_size,
                model.arch().input_size,
            ],
            defense: model.defense().label(),
        };
        let policy = AdmissionPolicy {
            shed: config.shed,
            deadline: config.deadline,
        };

        let shared = Arc::new(Shared {
            model,
            admission: Arc::new(BoundedQueue::new(config.queue_depth.max(1))),
            // A couple of flushed batches per worker may wait; beyond that
            // the batcher itself back-pressures.
            batches: Arc::new(BoundedQueue::new(worker_count * 2)),
            max_batch: config.max_batch.max(1),
            window: config.flush_window,
            batcher_restarts: AtomicUsize::new(0),
            worker_restarts: AtomicUsize::new(0),
            shutting_down: AtomicBool::new(false),
        });

        let mut slots = Vec::with_capacity(worker_count + 1);
        slots.push(Slot {
            role: Role::Batcher,
            handle: spawn_role(Role::Batcher, &shared)?,
        });
        for id in 0..worker_count {
            slots.push(Slot {
                role: Role::Worker(id),
                handle: spawn_role(Role::Worker(id), &shared)?,
            });
        }
        let supervisor = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("blurnet-serve-supervisor".into())
                .spawn(move || supervisor_loop(&shared, slots))
                .map_err(|e| ServeError::BadConfig(format!("cannot spawn supervisor: {e}")))?
        };

        Ok(ClassifyService {
            shared: Arc::new(SharedHandle(shared)),
            supervisor: Some(supervisor),
            info,
            policy,
        })
    }

    /// The served model's metadata.
    pub fn info(&self) -> &ModelInfo {
        &self.info
    }

    /// Recovery telemetry: threads respawned by the supervisor so far.
    pub fn health(&self) -> ServiceHealth {
        ServiceHealth {
            batcher_restarts: self.shared.0.batcher_restarts.load(Ordering::Relaxed),
            worker_restarts: self.shared.0.worker_restarts.load(Ordering::Relaxed),
        }
    }

    /// A cheap, cloneable request handle bound to this service.
    pub fn client(&self) -> ServeClient {
        ServeClient {
            admission: Arc::clone(&self.shared.0.admission),
            info: self.info.clone(),
            policy: self.policy,
        }
    }

    /// Drains and stops the service: the admission queue closes (new
    /// submissions fail fast), every request admitted before the close is
    /// answered, and all threads — including the supervisor — are joined.
    ///
    /// Panics that occurred *during* the run were already surfaced as
    /// per-request errors and respawns (see [`ClassifyService::health`]);
    /// they do not fail the shutdown.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Worker`] if the supervisor itself died.
    pub fn shutdown(mut self) -> Result<()> {
        self.shutdown_inner()
    }

    fn shutdown_inner(&mut self) -> Result<()> {
        self.shared.0.shutting_down.store(true, Ordering::SeqCst);
        self.shared.0.admission.close();
        if let Some(supervisor) = self.supervisor.take() {
            if supervisor.join().is_err() {
                return Err(ServeError::Worker(
                    "the supervisor thread panicked during the run".into(),
                ));
            }
        }
        Ok(())
    }
}

impl Drop for ClassifyService {
    /// Dropping the service drains it like [`ClassifyService::shutdown`]
    /// (a supervisor failure is swallowed — use `shutdown` to observe
    /// it).
    fn drop(&mut self) {
        let _ = self.shutdown_inner();
    }
}

/// Spawns the thread for one role.
fn spawn_role(role: Role, shared: &Arc<Shared>) -> Result<JoinHandle<()>> {
    let shared = Arc::clone(shared);
    let (name, body): (String, Box<dyn FnOnce() + Send>) = match role {
        Role::Batcher => (
            "blurnet-serve-batcher".into(),
            Box::new(move || batcher_loop(&shared)),
        ),
        Role::Worker(id) => (
            format!("blurnet-serve-worker-{id}"),
            Box::new(move || worker_loop(&shared)),
        ),
    };
    std::thread::Builder::new()
        .name(name)
        .spawn(body)
        .map_err(|e| ServeError::BadConfig(format!("cannot spawn {role:?}: {e}")))
}

/// The supervisor: polls every service thread, joins the ones that
/// finished, and **respawns any that panicked** — even during shutdown,
/// since the replacement simply drains what is left and exits cleanly.
/// Exits once every supervised thread has finished without panicking.
fn supervisor_loop(shared: &Arc<Shared>, mut slots: Vec<Slot>) {
    while !slots.is_empty() {
        let mut alive = Vec::with_capacity(slots.len());
        for slot in slots {
            if !slot.handle.is_finished() {
                alive.push(slot);
                continue;
            }
            if slot.handle.join().is_ok() {
                // Clean exit (shutdown drain finished): stop watching.
                continue;
            }
            match slot.role {
                Role::Batcher => shared.batcher_restarts.fetch_add(1, Ordering::Relaxed),
                Role::Worker(_) => shared.worker_restarts.fetch_add(1, Ordering::Relaxed),
            };
            match spawn_role(slot.role, shared) {
                Ok(handle) => alive.push(Slot {
                    role: slot.role,
                    handle,
                }),
                Err(_) => {
                    // Cannot respawn (thread exhaustion): fail open — close
                    // both queues so nothing blocks forever; queued
                    // requests are answered with shutdown errors when
                    // their reply channels drop.
                    shared.admission.close();
                    shared.batches.close();
                }
            }
        }
        slots = alive;
        if slots.is_empty() {
            break;
        }
        std::thread::sleep(SUPERVISOR_POLL);
    }
    // Belt and braces: if the batcher generation chain ended without
    // closing the batch queue (respawn failure), close it now so no
    // worker blocks forever.
    if shared.shutting_down.load(Ordering::SeqCst) {
        shared.batches.close();
    }
}

/// The single batcher thread: open a batch on the first waiting request,
/// coalesce until `max_batch` or the flush window elapses, dispatch, and
/// repeat. On admission close, the in-flight batch is flushed and the
/// batch queue is closed behind it. The in-flight batch lives in a
/// [`FlightGuard`], so a panic mid-coalesce hands it to the workers
/// instead of dropping its reply channels.
fn batcher_loop(shared: &Shared) {
    loop {
        // Block for the first request of the next batch.
        let Some(first) = shared.admission.pop() else {
            if shared.admission.is_closed() {
                break; // closed and drained
            }
            continue; // fault-injected spurious wakeup
        };
        let deadline = Instant::now() + shared.window;
        let mut batch = FlightGuard::new(
            Flight {
                pendings: Vec::with_capacity(shared.max_batch),
                deaths: 0,
            },
            Arc::clone(&shared.batches),
        );
        batch.push(first);
        let mut admission_closed = false;
        while batch.len() < shared.max_batch {
            let remaining = deadline.saturating_duration_since(Instant::now());
            // `pop_timeout` hands out already-queued items even with an
            // exhausted deadline, so a zero window still coalesces
            // everything that is waiting.
            match shared.admission.pop_timeout(remaining) {
                PopTimeout::Item(pending) => batch.push(pending),
                PopTimeout::TimedOut => break,
                PopTimeout::Closed => {
                    admission_closed = true;
                    break;
                }
            }
        }
        // Fault site `serve.batcher.flush`: a panic here unwinds with the
        // coalesced batch still in its guard — the guard re-enqueues it
        // and the supervisor respawns the batcher.
        blurnet::fault_point!(blurnet::fault::sites::SERVE_BATCH_FLUSH);
        let flight = batch.disarm();
        let mut item = flight;
        loop {
            match shared.batches.push(item) {
                Ok(()) => break,
                Err(back) => {
                    if shared.batches.is_closed() {
                        // Only possible after a respawn-failure close:
                        // answer what we hold instead of hanging.
                        let msg = "batch queue closed before dispatch".to_string();
                        for pending in back.pendings {
                            let _ = pending.reply.send(Err(ServeError::Shutdown(msg.clone())));
                        }
                        return;
                    }
                    item = back; // fault-injected spurious refusal
                }
            }
        }
        if admission_closed {
            break;
        }
    }
    shared.batches.close();
}

/// One batch worker: owns a prepacked engine over the shared weights and
/// answers every request of every batch it pops. Each popped batch rides
/// in a [`FlightGuard`], so a worker panic re-enqueues the batch for a
/// surviving worker rather than dropping its requests.
fn worker_loop(shared: &Shared) {
    let engine = match BatchEngine::new(shared.model.network()) {
        Ok(engine) => engine,
        Err(e) => {
            // Checked in `ClassifyService::new`; if it fails here anyway,
            // fail every batch cleanly rather than panicking.
            let msg = e.to_string();
            while let Some(flight) = shared.batches.pop() {
                for pending in flight.pendings {
                    let _ = pending.reply.send(Err(ServeError::Worker(msg.clone())));
                }
            }
            return;
        }
    };
    loop {
        let Some(flight) = shared.batches.pop() else {
            if shared.batches.is_closed() {
                break;
            }
            continue; // fault-injected spurious wakeup
        };
        let guard = FlightGuard::new(flight, Arc::clone(&shared.batches));
        // Fault site `serve.worker.batch`: a panic here kills the worker
        // with the batch in its guard — re-enqueued for a peer, worker
        // respawned by the supervisor.
        blurnet::fault_point!(blurnet::fault::sites::SERVE_WORKER_BATCH);
        answer_flight(&shared.model, &engine, guard.disarm());
    }
}

/// Answers one flushed batch: sheds expired requests, classifies the rest
/// with poison-bisection recovery.
fn answer_flight(model: &DefendedModel, engine: &BatchEngine<'_>, flight: Flight) {
    let now = Instant::now();
    let (live, expired): (Vec<Pending>, Vec<Pending>) = flight
        .pendings
        .into_iter()
        .partition(|pending| !pending.expired(now));
    for pending in expired {
        let _ = pending.reply.send(Err(ServeError::DeadlineExceeded));
    }
    answer_bisecting(model, engine, live);
}

/// Classifies `batch` and answers every reply channel. On failure — an
/// error *or a panic* from the classification — a multi-request batch is
/// split in half and each half retried independently, recursively, until
/// the poisoned request is alone in a singleton batch: it alone receives
/// the error, and every batch-mate is recomputed in a sub-batch. The
/// engine is bit-identical at every batch composition, so the survivors'
/// responses match what they would have been without the poison, bit for
/// bit.
fn answer_bisecting(model: &DefendedModel, engine: &BatchEngine<'_>, mut batch: Vec<Pending>) {
    if batch.is_empty() {
        return;
    }
    match classify_batch_caught(model, engine, &batch) {
        Ok(results) => {
            for (pending, result) in batch.into_iter().zip(results) {
                // A dropped receiver (client gave up) is not an error.
                let _ = pending.reply.send(Ok(result));
            }
        }
        Err(msg) => {
            if batch.len() == 1 {
                let pending = batch.remove(0);
                let _ = pending.reply.send(Err(ServeError::Worker(msg)));
            } else {
                let right = batch.split_off(batch.len() / 2);
                answer_bisecting(model, engine, batch);
                answer_bisecting(model, engine, right);
            }
        }
    }
}

/// Runs [`classify_batch`] with panics contained, normalizing both error
/// paths to a message. This is the recovery scope the poison-request
/// fault site ([`blurnet::fault::sites::SERVE_WORKER_REQUEST`]) fires
/// inside.
fn classify_batch_caught(
    model: &DefendedModel,
    engine: &BatchEngine<'_>,
    batch: &[Pending],
) -> std::result::Result<Vec<Classification>, String> {
    match catch_unwind(AssertUnwindSafe(|| classify_batch(model, engine, batch))) {
        Ok(Ok(results)) => Ok(results),
        Ok(Err(e)) => Err(e.to_string()),
        Err(payload) => Err(panic_message(&payload)),
    }
}

/// Renders a panic payload as a readable message. A payload re-thrown
/// across a thread-pool boundary arrives double-boxed
/// (`Box<Box<dyn Any>>`), so nested boxes are unwrapped first.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    let mut payload = payload;
    while let Some(inner) = payload.downcast_ref::<Box<dyn std::any::Any + Send>>() {
        payload = inner.as_ref();
    }
    if let Some(s) = payload.downcast_ref::<&str>() {
        format!("panic while classifying a batch: {s}")
    } else if let Some(s) = payload.downcast_ref::<String>() {
        format!("panic while classifying a batch: {s}")
    } else {
        "panic while classifying a batch".to_string()
    }
}

/// The defended classification of one coalesced batch: preprocessing +
/// one engine pass (+ one raw pass for the verdict when the defense
/// rewrites its input). Every step is per-image independent, which is
/// what makes micro-batching invisible in the responses.
fn classify_batch(
    model: &DefendedModel,
    engine: &BatchEngine<'_>,
    batch: &[Pending],
) -> Result<Vec<Classification>> {
    // Fault site `serve.worker.request`, tagged with each request's
    // content hash: arming it with a poisoned payload's tag models a
    // request that deterministically panics the forward pass — stable
    // across bisection retries because the tag travels with the content.
    #[cfg(feature = "fault-injection")]
    for pending in batch {
        blurnet::fault_point!(
            blurnet::fault::sites::SERVE_WORKER_REQUEST,
            tag = blurnet::fault::tag_f32s(pending.image.data())
        );
    }
    let images: Vec<Tensor> = batch.iter().map(|p| p.image.clone()).collect();
    let raw = Tensor::stack(&images)?;
    let defended_input = model.preprocess_batch(&raw)?;
    let defended = engine.classify_with_confidence(&defended_input)?;
    let verdicts: Vec<DefenseVerdict> = if model.has_input_preprocessing() {
        let raw_labels = engine.predict(&raw)?;
        defended
            .iter()
            .zip(raw_labels)
            .map(|(&(label, _), raw_label)| {
                if label == raw_label {
                    DefenseVerdict::Clean
                } else {
                    DefenseVerdict::Flagged
                }
            })
            .collect()
    } else {
        vec![DefenseVerdict::Clean; defended.len()]
    };
    Ok(defended
        .into_iter()
        .zip(verdicts)
        .map(|((label, confidence), verdict)| Classification {
            label,
            confidence,
            verdict,
        })
        .collect())
}

/// The single-request reference path: classifies one image exactly as the
/// service would, but alone — no batching, no queues, a fresh engine.
///
/// This is the oracle the determinism tests (and the load generator's
/// pre-flight gate) compare micro-batched responses against, bit for bit.
///
/// # Errors
///
/// Returns [`ServeError::BadConfig`] for a non-deterministic defense and
/// propagates model/engine failures.
pub fn classify_single(model: &DefendedModel, image: &Tensor) -> Result<Classification> {
    if !model.deterministic_inference() {
        return Err(ServeError::BadConfig(format!(
            "defense {} cannot be served deterministically",
            model.defense().label()
        )));
    }
    let engine =
        BatchEngine::new(model.network()).map_err(|e| ServeError::Worker(e.to_string()))?;
    let batch = [Pending {
        image: image.clone(),
        reply: sync_channel(1).0,
        deadline: None,
    }];
    Ok(classify_batch(model, &engine, &batch)?.remove(0))
}
