//! # blurnet-serve: async micro-batching inference service
//!
//! BlurNet's threat model is a camera stream of road signs classified in
//! real time, so the defended model ultimately has to live behind a
//! low-latency, high-throughput request path. This crate is that path: a
//! long-running [`ClassifyService`] that accepts classification requests
//! (a `[C, H, W]` image tensor in; label + confidence + defense verdict
//! out), **coalesces concurrent requests into single
//! [`blurnet_nn::BatchEngine`] batch passes** via a bounded micro-batching
//! queue with deadline- and size-triggered flush ("flush at batch 32 or
//! 2 ms"), and drains batches on the persistent rayon pool shared with the
//! rest of the stack.
//!
//! # Request lifecycle
//!
//! ```text
//! client ──submit──▶ admission queue ──▶ batcher ──▶ batch queue ──▶ workers
//!   ▲   (BoundedQueue, back-pressure)  (flush at      (BoundedQueue)   │
//!   │                                   max_batch                      │
//!   └──────────────── per-request reply channel ◀── forward_batch ─────┘
//! ```
//!
//! 1. A [`ServeClient`] validates the image shape and pushes the request
//!    (image + reply channel) into the bounded **admission queue** — the
//!    same [`blurnet::queue::BoundedQueue`] primitive the experiment
//!    scheduler streams DAG nodes through. A full queue back-pressures the
//!    client instead of growing an unbounded backlog.
//! 2. The single **batcher** thread pops the first waiting request, then
//!    keeps coalescing until the batch holds
//!    [`ServeConfig::max_batch`] requests **or**
//!    [`ServeConfig::flush_window`] has elapsed since the batch opened —
//!    whichever triggers first flushes the batch downstream.
//! 3. A fleet of [`ServeConfig::workers`] **batch workers** (each owning a
//!    prepacked [`blurnet_nn::BatchEngine`] over the shared read-only
//!    weights) pops batches, runs the defense's preprocessing plus one
//!    `forward_batch`, and answers every request's reply channel with a
//!    [`Classification`].
//!
//! # Determinism
//!
//! Responses are **bit-identical to single-request execution**: shard
//! boundaries, the defense's per-image preprocessing, and the row-local
//! softmax confidence all treat each image independently, so which
//! requests happen to share a batch — and how many workers or rayon
//! threads drain it — can never change any response. The
//! `tests/determinism.rs` suite pins this at batch sizes {1, 4, 32} and
//! worker counts {1, 4}; [`classify_single`] is the reference path.
//!
//! Randomized smoothing is the one defense that cannot honor this
//! contract (its Monte-Carlo vote consumes a stateful RNG), so
//! [`ClassifyService::new`] refuses it up front.
//!
//! # Shutdown
//!
//! [`ClassifyService::shutdown`] closes the admission queue, flushes the
//! batcher's in-flight batch, drains the batch queue, and joins every
//! thread: requests admitted before the close are always answered, and
//! new submissions fail fast with [`ServeError::Shutdown`].
//!
//! # Failure model & recovery
//!
//! The batcher and workers run under a **supervisor** that respawns any
//! thread that panics mid-run ([`ServiceHealth`] counts the respawns); a
//! batch held by a dying thread is re-enqueued for a surviving worker.
//! A request that deterministically panics the forward pass is isolated
//! by **bisecting its batch** — only the poisoned request gets an error,
//! its batch-mates are recomputed and still return bit-identical answers.
//! Overload is explicit: [`ServeConfig::shed`] turns a full admission
//! queue into [`ServeError::QueueFull`] (retry with backoff), and
//! [`ServeConfig::deadline`] sheds stale queued requests with
//! [`ServeError::DeadlineExceeded`]. See `ARCHITECTURE.md` § "Failure
//! model & recovery".
//!
//! # Wire protocol
//!
//! The [`protocol`] module puts the service behind TCP: a one-line JSON
//! handshake, then length-prefixed little-endian `f32` image payloads and
//! fixed-layout binary responses (confidence transported as raw `f32`
//! bits, so the wire is exactly as deterministic as the engine).

#![warn(missing_docs)]

mod error;
pub mod protocol;
mod service;

pub use error::ServeError;
pub use service::{
    classify_single, Classification, ClassifyService, DefenseVerdict, ModelInfo, ServeClient,
    ServeConfig, ServiceHealth, Ticket,
};

/// Convenient result alias used across the crate.
pub type Result<T> = std::result::Result<T, ServeError>;
