//! TCP wire protocol for the classification service.
//!
//! The protocol is deliberately minimal and fully deterministic: after a
//! one-line JSON handshake from the server, every message is fixed-layout
//! binary with little-endian integers and `f32` payloads transported as
//! raw bits, so the bytes on the wire are exactly as reproducible as the
//! engine outputs behind them.
//!
//! ```text
//! server → client   handshake: one JSON line (schema, model dims, defense,
//!                   batching profile), terminated by `\n`
//! client → server   request:  u32 LE element count, then that many f32 LE
//!                   (count 0 = goodbye, connection closes)
//! server → client   response: u8 status
//!                     0 (ok):    u32 LE label, u32 LE confidence f32 bits,
//!                                u8 verdict (0 = clean, 1 = flagged)
//!                     1 (error): u32 LE byte length, UTF-8 message
//!                     2 (queue_full):        no body — admission shed the
//!                                            request; retry with backoff
//!                     3 (deadline_exceeded): no body — the request went
//!                                            stale in the queue
//! ```
//!
//! A request whose element count exceeds [`MAX_FRAME_ELEMENTS`] is
//! answered with an error response and its payload is drained in bounded
//! chunks (never buffered whole), keeping the connection usable — a
//! hostile or corrupt length prefix cannot make the server allocate
//! gigabytes.
//!
//! Requests on one connection are answered in order; concurrency comes
//! from opening multiple connections, which all feed the same
//! micro-batching queue and therefore coalesce into shared batches.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use blurnet_tensor::Tensor;
use serde::Value;

use crate::{Classification, DefenseVerdict, ModelInfo, Result, ServeClient, ServeError};

/// Protocol identifier sent in the handshake's `schema` field.
pub const SCHEMA: &str = "blurnet-serve/1";

/// Response status byte: request answered.
const STATUS_OK: u8 = 0;
/// Response status byte: request failed; an error message follows.
const STATUS_ERR: u8 = 1;
/// Response status byte: admission queue full, request shed (no body).
const STATUS_QUEUE_FULL: u8 = 2;
/// Response status byte: per-request deadline exceeded (no body).
const STATUS_DEADLINE: u8 = 3;

/// Hard cap on the element count of one request frame (4 MiB of `f32`s —
/// three orders of magnitude above any image this service classifies). A
/// larger length prefix is answered with an error response and the
/// payload is drained without ever being buffered whole.
pub const MAX_FRAME_ELEMENTS: usize = 1 << 20;

/// The server's opening JSON line, describing the model and batching
/// profile so clients can size payloads without out-of-band knowledge.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Handshake {
    /// Protocol identifier; always [`SCHEMA`] for this version.
    pub schema: String,
    /// Number of output classes.
    pub classes: usize,
    /// Expected image shape, `[channels, height, width]`.
    pub input_dims: [usize; 3],
    /// Label of the defense variant being served.
    pub defense: String,
    /// The service's size-triggered flush threshold.
    pub max_batch: usize,
    /// The service's deadline-triggered flush window, in microseconds.
    pub window_us: u64,
}

impl Handshake {
    /// Number of `f32` elements in one request image.
    pub fn elements(&self) -> usize {
        self.input_dims.iter().product()
    }

    /// Builds the handshake for a service's model and batching profile.
    pub fn new(info: &ModelInfo, max_batch: usize, flush_window: Duration) -> Self {
        Handshake {
            schema: SCHEMA.to_string(),
            classes: info.classes,
            input_dims: info.input_dims,
            defense: info.defense.clone(),
            max_batch,
            window_us: flush_window.as_micros() as u64,
        }
    }

    /// Encodes the handshake as its one-line JSON wire form (no trailing
    /// newline).
    pub fn to_json(&self) -> String {
        let value = Value::Map(vec![
            ("schema".into(), Value::Str(self.schema.clone())),
            ("classes".into(), Value::Int(self.classes as i64)),
            (
                "input_dims".into(),
                Value::Seq(
                    self.input_dims
                        .iter()
                        .map(|&d| Value::Int(d as i64))
                        .collect(),
                ),
            ),
            ("defense".into(), Value::Str(self.defense.clone())),
            ("max_batch".into(), Value::Int(self.max_batch as i64)),
            ("window_us".into(), Value::Int(self.window_us as i64)),
        ]);
        serde_json::to_string(&value).expect("handshake serialization is infallible")
    }

    /// Parses the handshake from its JSON wire form.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Protocol`] for malformed JSON, a missing
    /// field, or an unknown schema identifier.
    pub fn from_json(line: &str) -> Result<Self> {
        let value: Value = serde_json::from_str(line)
            .map_err(|e| ServeError::Protocol(format!("bad handshake JSON: {e}")))?;
        let field = |key: &str| {
            value
                .get_field(key)
                .ok_or_else(|| ServeError::Protocol(format!("handshake missing `{key}`")))
        };
        let as_usize = |key: &str| -> Result<usize> {
            match field(key)? {
                Value::Int(i) if *i >= 0 => Ok(*i as usize),
                Value::UInt(u) => Ok(*u as usize),
                other => Err(ServeError::Protocol(format!(
                    "handshake `{key}` is not a non-negative integer: {other:?}"
                ))),
            }
        };
        let schema = match field("schema")? {
            Value::Str(s) => s.clone(),
            other => {
                return Err(ServeError::Protocol(format!(
                    "handshake `schema` is not a string: {other:?}"
                )))
            }
        };
        if schema != SCHEMA {
            return Err(ServeError::Protocol(format!(
                "unknown protocol schema {schema:?} (expected {SCHEMA:?})"
            )));
        }
        let defense = match field("defense")? {
            Value::Str(s) => s.clone(),
            other => {
                return Err(ServeError::Protocol(format!(
                    "handshake `defense` is not a string: {other:?}"
                )))
            }
        };
        let dims = match field("input_dims")? {
            Value::Seq(items) if items.len() == 3 => {
                let mut dims = [0usize; 3];
                for (slot, item) in dims.iter_mut().zip(items) {
                    *slot = match item {
                        Value::Int(i) if *i >= 0 => *i as usize,
                        Value::UInt(u) => *u as usize,
                        other => {
                            return Err(ServeError::Protocol(format!(
                                "handshake `input_dims` entry is not an integer: {other:?}"
                            )))
                        }
                    };
                }
                dims
            }
            other => {
                return Err(ServeError::Protocol(format!(
                    "handshake `input_dims` is not a 3-element array: {other:?}"
                )))
            }
        };
        Ok(Handshake {
            schema,
            classes: as_usize("classes")?,
            input_dims: dims,
            defense,
            max_batch: as_usize("max_batch")?,
            window_us: as_usize("window_us")? as u64,
        })
    }
}

/// Read-side lifecycle policy for a served stream: how long a silent
/// client may hold the connection, and a drain flag for graceful
/// shutdown. `StreamPolicy::default()` is fully passive — plain blocking
/// reads, exactly the pre-policy behavior — so in-memory tests and
/// embedded callers are unaffected.
#[derive(Debug, Clone, Default)]
pub struct StreamPolicy {
    /// Disconnect a connection that produces **no bytes** for this long
    /// while a read is outstanding (slowloris defense). Progress — any
    /// byte — resets the clock. Requires the underlying transport to
    /// return `WouldBlock`/`TimedOut` on stalled reads (TCP streams get a
    /// short read timeout from [`serve_connections`] automatically).
    pub idle_timeout: Option<Duration>,
    /// When set and flipped true: stop accepting connections, stop
    /// reading **new** requests at frame boundaries, finish requests
    /// already in flight. Connections end as if the client said goodbye.
    pub drain: Option<Arc<AtomicBool>>,
}

impl StreamPolicy {
    /// Whether any non-default behavior is configured.
    fn is_active(&self) -> bool {
        self.idle_timeout.is_some() || self.drain.is_some()
    }

    /// Whether a drain has been requested.
    fn draining(&self) -> bool {
        self.drain
            .as_ref()
            .is_some_and(|flag| flag.load(Ordering::Relaxed))
    }
}

/// What a frame-boundary read can resolve to.
enum FrameRead {
    /// The buffer was filled.
    Complete,
    /// The stream ended cleanly (EOF, or a drain observed at the
    /// boundary) — only possible when `at_boundary`.
    End,
}

/// Fills `buf` from `reader` under `policy`. At a frame boundary
/// (`at_boundary`), EOF and drain both end the stream cleanly; mid-frame,
/// EOF is a protocol error and a drain lets the in-flight frame finish.
/// A stalled transport (`WouldBlock`/`TimedOut`) is retried until the
/// idle deadline — measured from the last byte of progress — expires.
fn fill_frame(
    reader: &mut impl Read,
    buf: &mut [u8],
    policy: &StreamPolicy,
    at_boundary: bool,
) -> Result<FrameRead> {
    let mut filled = 0usize;
    let mut last_progress = Instant::now();
    while filled < buf.len() {
        if at_boundary && filled == 0 && policy.draining() {
            return Ok(FrameRead::End);
        }
        match reader.read(&mut buf[filled..]) {
            Ok(0) => {
                // A hangup at a frame boundary is a normal goodbye (even
                // after a partial length prefix, matching the pre-policy
                // `read_exact` handling); mid-frame it is truncation.
                return if at_boundary {
                    Ok(FrameRead::End)
                } else {
                    Err(std::io::Error::new(
                        std::io::ErrorKind::UnexpectedEof,
                        "connection closed mid-frame",
                    )
                    .into())
                };
            }
            Ok(n) => {
                filled += n;
                last_progress = Instant::now();
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e)
                if policy.is_active()
                    && matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
            {
                if let Some(limit) = policy.idle_timeout {
                    if last_progress.elapsed() >= limit {
                        return Err(ServeError::IdleTimeout(limit));
                    }
                }
                std::thread::sleep(Duration::from_millis(1));
            }
            Err(e) => return Err(e.into()),
        }
    }
    Ok(FrameRead::Complete)
}

fn read_u32(reader: &mut impl Read) -> std::io::Result<u32> {
    let mut buf = [0u8; 4];
    reader.read_exact(&mut buf)?;
    Ok(u32::from_le_bytes(buf))
}

fn read_u8(reader: &mut impl Read) -> std::io::Result<u8> {
    let mut buf = [0u8; 1];
    reader.read_exact(&mut buf)?;
    Ok(buf[0])
}

/// Writes one response message (any status) to `writer`.
fn write_response(writer: &mut impl Write, result: &Result<Classification>) -> std::io::Result<()> {
    match result {
        Ok(c) => {
            writer.write_all(&[STATUS_OK])?;
            writer.write_all(&(c.label as u32).to_le_bytes())?;
            writer.write_all(&c.confidence.to_bits().to_le_bytes())?;
            writer.write_all(&[match c.verdict {
                DefenseVerdict::Clean => 0u8,
                DefenseVerdict::Flagged => 1u8,
            }])?;
        }
        Err(ServeError::QueueFull) => writer.write_all(&[STATUS_QUEUE_FULL])?,
        Err(ServeError::DeadlineExceeded) => writer.write_all(&[STATUS_DEADLINE])?,
        Err(e) => {
            let msg = e.to_string();
            writer.write_all(&[STATUS_ERR])?;
            writer.write_all(&(msg.len() as u32).to_le_bytes())?;
            writer.write_all(msg.as_bytes())?;
        }
    }
    writer.flush()
}

/// Discards exactly `bytes` from `reader` in bounded chunks, so an
/// oversized frame is consumed without a matching allocation.
fn drain_payload(reader: &mut impl Read, bytes: u64) -> std::io::Result<()> {
    let copied = std::io::copy(&mut reader.take(bytes), &mut std::io::sink())?;
    if copied < bytes {
        return Err(std::io::Error::new(
            std::io::ErrorKind::UnexpectedEof,
            "connection closed mid-payload",
        ));
    }
    Ok(())
}

/// Serves one framed request stream until the client says goodbye
/// (element count 0), the stream ends, or `policy` ends it (idle
/// deadline, drain at a frame boundary) — the transport-agnostic core of
/// [`serve_connections`], directly drivable from in-memory buffers in
/// tests. Malformed-size and oversized requests are answered with an
/// error response and their payloads drained, keeping the stream usable.
pub fn serve_stream(
    reader: &mut impl BufRead,
    writer: &mut impl Write,
    client: &ServeClient,
    handshake: &Handshake,
    policy: &StreamPolicy,
) -> Result<()> {
    writer.write_all(handshake.to_json().as_bytes())?;
    writer.write_all(b"\n")?;
    writer.flush()?;

    let expected = handshake.elements();
    loop {
        let mut count_buf = [0u8; 4];
        let count = match fill_frame(reader, &mut count_buf, policy, true)? {
            FrameRead::End => return Ok(()),
            FrameRead::Complete => u32::from_le_bytes(count_buf) as usize,
        };
        if count == 0 {
            return Ok(());
        }
        if count > MAX_FRAME_ELEMENTS {
            drain_payload(reader, count as u64 * 4)?;
            let err = Err(ServeError::BadInput(format!(
                "frame of {count} elements exceeds the {MAX_FRAME_ELEMENTS}-element cap"
            )));
            write_response(writer, &err)?;
            continue;
        }
        let mut payload = vec![0u8; count * 4];
        fill_frame(reader, &mut payload, policy, false)?;
        if count != expected {
            let err = Err(ServeError::BadInput(format!(
                "expected {expected} f32 elements per image, got {count}"
            )));
            write_response(writer, &err)?;
            continue;
        }
        // Fault site `serve.tcp.frame`: a fired fault turns this frame
        // into a per-request error response; the payload is already
        // consumed, so the connection stays in sync.
        #[cfg(feature = "fault-injection")]
        {
            if blurnet::fault::fire(blurnet::fault::sites::SERVE_TCP_FRAME) {
                let err = Err(ServeError::Protocol(format!(
                    "{}: injected frame error",
                    blurnet::fault::MARKER
                )));
                write_response(writer, &err)?;
                continue;
            }
        }
        let values: Vec<f32> = payload
            .chunks_exact(4)
            .map(|b| f32::from_le_bytes([b[0], b[1], b[2], b[3]]))
            .collect();
        let result = Tensor::from_vec(values, &handshake.input_dims)
            .map_err(ServeError::from)
            .and_then(|image| client.classify(image));
        write_response(writer, &result)?;
    }
}

/// Serves one accepted TCP connection via [`serve_stream`]. An active
/// policy puts a short read timeout on the socket so stalled reads
/// surface as `WouldBlock`/`TimedOut` for [`fill_frame`] to pace.
fn serve_connection(
    stream: TcpStream,
    client: &ServeClient,
    handshake: &Handshake,
    policy: &StreamPolicy,
) -> Result<()> {
    if policy.is_active() {
        stream.set_read_timeout(Some(Duration::from_millis(50)))?;
    }
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    serve_stream(&mut reader, &mut writer, client, handshake, policy)
}

/// Accepts connections on `listener` and serves each on its own thread,
/// all feeding the shared micro-batching service behind `client`.
///
/// With `max_conns = Some(n)` the loop returns after accepting (and fully
/// serving) `n` connections — the shape the tests and the CI smoke run
/// use; `None` serves forever. When `policy.drain` is set, the listener
/// runs non-blocking and the loop exits as soon as the flag flips —
/// already-accepted connections are joined (each finishing its in-flight
/// requests) before the function returns. Per-connection protocol errors
/// are reported on that connection and do not take the server down; idle
/// disconnects get their own log line.
///
/// # Errors
///
/// Returns [`ServeError::Io`] only for accept-loop failures on the
/// listener itself.
pub fn serve_connections(
    listener: &TcpListener,
    client: &ServeClient,
    handshake: &Handshake,
    max_conns: Option<usize>,
    policy: &StreamPolicy,
) -> Result<()> {
    let mut handles = Vec::new();
    let mut spawn = |stream: TcpStream| {
        let client = client.clone();
        let handshake = handshake.clone();
        let policy = policy.clone();
        handles.push(std::thread::spawn(move || {
            match serve_connection(stream, &client, &handshake, &policy) {
                Ok(()) => {}
                Err(ServeError::IdleTimeout(limit)) => {
                    eprintln!("serve: disconnected idle client (no bytes for {limit:?})")
                }
                Err(e) => eprintln!("serve: connection error: {e}"),
            }
        }));
    };

    if let Some(drain) = policy.drain.clone() {
        // Drainable accept loop: non-blocking accepts polled against the
        // drain flag, so SIGTERM stops admission within one poll tick.
        listener.set_nonblocking(true)?;
        let mut served = 0usize;
        while !drain.load(Ordering::Relaxed) {
            match listener.accept() {
                Ok((stream, _)) => {
                    // Accepted sockets may inherit non-blocking mode;
                    // hand the handler a blocking stream.
                    stream.set_nonblocking(false)?;
                    spawn(stream);
                    served += 1;
                    if max_conns.is_some_and(|n| served >= n) {
                        break;
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(10));
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e.into()),
            }
        }
    } else {
        for (served, conn) in listener.incoming().enumerate() {
            spawn(conn?);
            if max_conns.is_some_and(|n| served + 1 >= n) {
                break;
            }
        }
    }
    for handle in handles {
        let _ = handle.join();
    }
    Ok(())
}

/// A blocking TCP client for the service: one connection, requests
/// answered in order.
#[derive(Debug)]
pub struct RemoteClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    handshake: Handshake,
}

impl RemoteClient {
    /// Connects and reads the server's handshake line.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Io`] for socket failures and
    /// [`ServeError::Protocol`] for a malformed handshake.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let writer = stream.try_clone()?;
        let mut reader = BufReader::new(stream);
        let mut line = String::new();
        reader.read_line(&mut line)?;
        let handshake = Handshake::from_json(line.trim_end())?;
        Ok(RemoteClient {
            reader,
            writer,
            handshake,
        })
    }

    /// The server's handshake (model dims, defense, batching profile).
    pub fn handshake(&self) -> &Handshake {
        &self.handshake
    }

    /// Sends one image (row-major `[C, H, W]` values) and blocks for its
    /// classification.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::BadInput`] for a wrong element count
    /// (checked locally), the server's error for failed requests, and
    /// [`ServeError::Io`]/[`ServeError::Protocol`] for transport faults.
    pub fn classify(&mut self, values: &[f32]) -> Result<Classification> {
        let expected = self.handshake.elements();
        if values.len() != expected {
            return Err(ServeError::BadInput(format!(
                "expected {expected} f32 elements per image, got {}",
                values.len()
            )));
        }
        let mut payload = Vec::with_capacity(4 + values.len() * 4);
        payload.extend_from_slice(&(values.len() as u32).to_le_bytes());
        for v in values {
            payload.extend_from_slice(&v.to_bits().to_le_bytes());
        }
        self.writer.write_all(&payload)?;
        self.writer.flush()?;

        match read_u8(&mut self.reader)? {
            STATUS_OK => {
                let label = read_u32(&mut self.reader)? as usize;
                let confidence = f32::from_bits(read_u32(&mut self.reader)?);
                let verdict = match read_u8(&mut self.reader)? {
                    0 => DefenseVerdict::Clean,
                    1 => DefenseVerdict::Flagged,
                    other => {
                        return Err(ServeError::Protocol(format!(
                            "unknown verdict byte {other}"
                        )))
                    }
                };
                Ok(Classification {
                    label,
                    confidence,
                    verdict,
                })
            }
            STATUS_ERR => {
                let len = read_u32(&mut self.reader)? as usize;
                let mut msg = vec![0u8; len];
                self.reader.read_exact(&mut msg)?;
                Err(ServeError::Worker(
                    String::from_utf8_lossy(&msg).into_owned(),
                ))
            }
            STATUS_QUEUE_FULL => Err(ServeError::QueueFull),
            STATUS_DEADLINE => Err(ServeError::DeadlineExceeded),
            other => Err(ServeError::Protocol(format!(
                "unknown response status byte {other}"
            ))),
        }
    }

    /// Tells the server this connection is done (element count 0).
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Io`] if the goodbye cannot be written.
    pub fn goodbye(mut self) -> Result<()> {
        self.writer.write_all(&0u32.to_le_bytes())?;
        self.writer.flush()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handshake_json_roundtrip() {
        let handshake = Handshake {
            schema: SCHEMA.to_string(),
            classes: 17,
            input_dims: [3, 32, 32],
            defense: "input_filter(k=3)".to_string(),
            max_batch: 32,
            window_us: 2000,
        };
        let parsed = Handshake::from_json(&handshake.to_json()).expect("roundtrip parses");
        assert_eq!(parsed, handshake);
        assert_eq!(parsed.elements(), 3 * 32 * 32);
    }

    #[test]
    fn handshake_rejects_garbage() {
        assert!(Handshake::from_json("not json").is_err());
        assert!(Handshake::from_json("{}").is_err());
        let wrong_schema = r#"{"schema":"other/9","classes":2,"input_dims":[1,8,8],"defense":"baseline","max_batch":4,"window_us":0}"#;
        assert!(Handshake::from_json(wrong_schema).is_err());
    }
}
