//! Closed-loop load generator for the classification service.
//!
//! ```bash
//! # In-process sweep over offered load × batch window × worker count;
//! # writes BENCH_serve.json at the repository root:
//! cargo run --release -p blurnet-serve --bin loadgen
//! # Quick CI pass (small sweep, same schema):
//! cargo run --release -p blurnet-serve --bin loadgen -- --smoke
//! # Drive a running `serve` process over TCP instead:
//! cargo run --release -p blurnet-serve --bin loadgen -- \
//!     --connect 127.0.0.1:7878 --smoke
//! ```
//!
//! The default mode embeds the service in-process (same model, queues and
//! workers as the `serve` binary, minus the socket) and sweeps offered
//! load (concurrent closed-loop clients), the micro-batch flush window,
//! and the batch worker count. Each client sends its requests
//! back-to-back, so offered load rises with the client count and the
//! micro-batcher's coalescing becomes visible as a throughput gain at a
//! bounded latency cost.
//!
//! Before any timing, the run *asserts* that micro-batched responses are
//! bit-identical to [`classify_single`] — a determinism regression fails
//! the bench loudly, exactly like the scheduler bench's golden gate.
//!
//! `--connect ADDR` switches to driving an external server over the TCP
//! protocol (one connection per client); results are printed but not
//! written to `BENCH_serve.json`, since the server's configuration is not
//! under this process's control.

use std::sync::Arc;
use std::time::{Duration, Instant};

use blurnet::{ModelZoo, Scale};
use blurnet_bench::{host_entries, EXPERIMENT_SEED};
use blurnet_defenses::{DefendedModel, DefenseKind};
use blurnet_serve::protocol::RemoteClient;
use blurnet_serve::{classify_single, ClassifyService, ServeConfig, ServeError};
use blurnet_tensor::Tensor;
use serde::Value;

/// Default output path: `BENCH_serve.json` at the repository root.
const OUT_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serve.json");

fn usage() -> ! {
    eprintln!(
        "usage: loadgen [--smoke] [--out PATH] [--connect HOST:PORT] [--shed] [--deadline-us U] \
         [--defense baseline|input-filter:K|feature-filter:K]"
    );
    std::process::exit(2)
}

/// Reports a startup failure on stderr and exits nonzero — operational
/// errors (failed training, unreachable server) are not bugs, so no
/// panic backtrace.
fn fail(msg: String) -> ! {
    eprintln!("loadgen: {msg}");
    std::process::exit(1)
}

/// Retries `op` whenever a shedding service rejects with
/// [`ServeError::QueueFull`], sleeping an exponentially growing backoff
/// (50 µs doubling up to ~6.4 ms) between attempts; every other outcome
/// is returned as-is. The closed-loop clients never give a request up —
/// shedding trades their queue wait for explicit retries.
fn retry_queue_full<T>(
    mut op: impl FnMut() -> blurnet_serve::Result<T>,
) -> blurnet_serve::Result<T> {
    let mut backoff = Duration::from_micros(50);
    loop {
        match op() {
            Err(ServeError::QueueFull) => {
                std::thread::sleep(backoff);
                backoff = (backoff * 2).min(Duration::from_micros(6400));
            }
            other => return other,
        }
    }
}

struct Args {
    smoke: bool,
    out: std::path::PathBuf,
    connect: Option<String>,
    defense: DefenseKind,
    shed: bool,
    deadline: Option<Duration>,
}

fn parse_defense(spec: &str) -> Option<DefenseKind> {
    if spec == "baseline" {
        return Some(DefenseKind::Baseline);
    }
    let (name, kernel) = spec.split_once(':')?;
    let kernel: usize = kernel.parse().ok()?;
    match name {
        "input-filter" => Some(DefenseKind::InputFilter { kernel }),
        "feature-filter" => Some(DefenseKind::FeatureFilter { kernel }),
        _ => None,
    }
}

fn parse_args() -> Args {
    let mut args = Args {
        smoke: false,
        out: std::path::PathBuf::from(OUT_PATH),
        connect: None,
        defense: DefenseKind::InputFilter { kernel: 3 },
        shed: false,
        deadline: None,
    };
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        let mut value = || iter.next().unwrap_or_else(|| usage());
        match arg.as_str() {
            "--smoke" => args.smoke = true,
            "--out" => args.out = value().into(),
            "--connect" => args.connect = Some(value()),
            "--defense" => args.defense = parse_defense(&value()).unwrap_or_else(|| usage()),
            "--shed" => args.shed = true,
            "--deadline-us" => {
                let us: u64 = value().parse().unwrap_or_else(|_| usage());
                args.deadline = Some(Duration::from_micros(us));
            }
            _ => usage(),
        }
    }
    args
}

/// Deterministic synthetic request images (xorshift-filled, values in
/// [0, 1)): the bench measures the serving path, not the dataset, and a
/// fixed stream keeps every run and host comparable.
fn synth_images(n: usize, dims: &[usize; 3]) -> Vec<Tensor> {
    let elements: usize = dims.iter().product();
    (0..n)
        .map(|i| {
            let mut state = 0x9e37_79b9_7f4a_7c15u64 ^ ((i as u64 + 1) << 17);
            let values = (0..elements)
                .map(|_| {
                    state ^= state << 13;
                    state ^= state >> 7;
                    state ^= state << 17;
                    (state >> 40) as f32 / (1u64 << 24) as f32
                })
                .collect();
            Tensor::from_vec(values, dims).expect("synthetic image shape")
        })
        .collect()
}

/// Latency percentile (nearest-rank on the sorted list), in nanoseconds.
fn percentile(sorted_ns: &[u64], q: f64) -> u64 {
    let idx = ((sorted_ns.len() - 1) as f64 * q).round() as usize;
    sorted_ns[idx]
}

/// One measured configuration: aggregate throughput plus the latency
/// distribution over every request of every client.
struct RunStats {
    clients: usize,
    requests: usize,
    elapsed: Duration,
    p50_ns: u64,
    p99_ns: u64,
}

impl RunStats {
    fn req_per_sec(&self) -> f64 {
        self.requests as f64 * 1e9 / self.elapsed.as_nanos() as f64
    }

    fn print(&self, context: &str) {
        println!(
            "{context} clients={:<3} reqs={:<5} {:>9.1} req/s   p50 {:>8.1} us   p99 {:>8.1} us",
            self.clients,
            self.requests,
            self.req_per_sec(),
            self.p50_ns as f64 / 1e3,
            self.p99_ns as f64 / 1e3,
        );
    }
}

/// Runs `clients` closed-loop client threads against `classify` (each
/// sending `per_client` requests back-to-back) and aggregates latency.
fn drive<C>(clients: usize, per_client: usize, images: &[Tensor], classify: C) -> RunStats
where
    C: Fn(usize, &Tensor) + Sync,
{
    let t0 = Instant::now();
    let all_latencies: Vec<Vec<u64>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let classify = &classify;
                scope.spawn(move || {
                    let mut latencies = Vec::with_capacity(per_client);
                    for r in 0..per_client {
                        let image = &images[(c * per_client + r) % images.len()];
                        let sent = Instant::now();
                        classify(c, image);
                        latencies.push(sent.elapsed().as_nanos() as u64);
                    }
                    latencies
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread"))
            .collect()
    });
    let elapsed = t0.elapsed();
    let mut latencies: Vec<u64> = all_latencies.into_iter().flatten().collect();
    latencies.sort_unstable();
    RunStats {
        clients,
        requests: latencies.len(),
        elapsed,
        p50_ns: percentile(&latencies, 0.50),
        p99_ns: percentile(&latencies, 0.99),
    }
}

/// The in-process sweep: offered load × flush window × worker count over
/// one shared trained model, with a bit-identity gate before any timing.
fn run_local(args: &Args) {
    let scale = Scale::from_env();
    eprintln!(
        "# blurnet loadgen — scale: {scale}, defense: {} (set BLURNET_SCALE=smoke|quick|paper)",
        args.defense.label()
    );
    let mut zoo = ModelZoo::new(scale, EXPERIMENT_SEED)
        .unwrap_or_else(|e| fail(format!("failed to build the model zoo: {e}")));
    let model = zoo
        .get_or_train_shared(&args.defense)
        .unwrap_or_else(|e| fail(format!("failed to train/load the model: {e}")));
    drop(zoo);

    let (client_counts, per_client): (&[usize], usize) = if args.smoke {
        (&[1, 4], 8)
    } else {
        (&[1, 4, 16], 64)
    };
    let windows_us: &[u64] = &[0, 2000];
    let worker_counts: &[usize] = if args.smoke { &[1] } else { &[1, 4] };
    let max_batch = 32;

    let dims = [
        model.arch().in_channels,
        model.arch().input_size,
        model.arch().input_size,
    ];
    let images = synth_images(64, &dims);

    // Determinism gate: the micro-batched service must answer bit-for-bit
    // like the single-request reference path before any number is worth
    // recording. A busy 4-worker service with an eager window exercises
    // real batch mixing.
    gate_bit_identity(&model, &images);
    println!("json-gate  micro_batched_bit_identical_to_single_request   true");

    let mut entries: Vec<(String, Value)> = vec![
        ("schema".into(), Value::Str("blurnet-serve-bench/v1".into())),
        ("scale".into(), Value::Str(scale.to_string())),
        ("defense".into(), Value::Str(args.defense.label())),
        ("max_batch".into(), Value::Int(max_batch as i64)),
        ("requests_per_client".into(), Value::Int(per_client as i64)),
        ("bit_identical_to_single_request".into(), Value::Bool(true)),
    ];
    entries.extend(host_entries("serve"));

    let mut runs: Vec<Value> = Vec::new();
    for &window_us in windows_us {
        for &workers in worker_counts {
            let service = ClassifyService::new(
                Arc::clone(&model),
                ServeConfig {
                    max_batch,
                    flush_window: Duration::from_micros(window_us),
                    workers,
                    queue_depth: 1024,
                    shed: args.shed,
                    deadline: args.deadline,
                },
            )
            .unwrap_or_else(|e| fail(format!("cannot start the service: {e}")));
            let handle = service.client();
            for &clients in client_counts {
                let stats = drive(clients, per_client, &images, |_, image| {
                    retry_queue_full(|| handle.classify(image.clone()))
                        .expect("in-process classification");
                });
                stats.print(&format!(
                    "json-serve window_us={window_us:<5} workers={workers} "
                ));
                runs.push(Value::Map(vec![
                    ("window_us".into(), Value::Int(window_us as i64)),
                    ("workers".into(), Value::Int(workers as i64)),
                    ("clients".into(), Value::Int(stats.clients as i64)),
                    ("requests".into(), Value::Int(stats.requests as i64)),
                    (
                        "elapsed_ns".into(),
                        Value::Int(stats.elapsed.as_nanos() as i64),
                    ),
                    (
                        "req_per_sec".into(),
                        Value::Float((stats.req_per_sec() * 100.0).round() / 100.0),
                    ),
                    ("p50_ns".into(), Value::Int(stats.p50_ns as i64)),
                    ("p99_ns".into(), Value::Int(stats.p99_ns as i64)),
                ]));
            }
            service.shutdown().expect("clean shutdown");
        }
    }
    entries.push(("runs".into(), Value::Seq(runs)));

    let json = serde_json::to_string_pretty(&Value::Map(entries)).expect("bench JSON");
    std::fs::write(&args.out, json + "\n")
        .unwrap_or_else(|e| fail(format!("cannot write {}: {e}", args.out.display())));
    eprintln!("# wrote {}", args.out.display());
}

/// Asserts micro-batched ≡ single-request bit-identity on a busy service.
fn gate_bit_identity(model: &Arc<DefendedModel>, images: &[Tensor]) {
    let reference: Vec<_> = images
        .iter()
        .map(|image| classify_single(model, image).expect("reference classification"))
        .collect();
    let service = ClassifyService::new(
        Arc::clone(model),
        ServeConfig {
            max_batch: 32,
            flush_window: Duration::from_micros(500),
            workers: 4,
            queue_depth: 1024,
            ..ServeConfig::default()
        },
    )
    .expect("gate service");
    let handle = service.client();
    let batched: Vec<_> = std::thread::scope(|scope| {
        let tickets: Vec<_> = images
            .iter()
            .map(|image| {
                let handle = handle.clone();
                let image = image.clone();
                scope.spawn(move || handle.classify(image).expect("batched classification"))
            })
            .collect();
        tickets
            .into_iter()
            .map(|t| t.join().expect("gate client thread"))
            .collect()
    });
    service.shutdown().expect("gate shutdown");
    for (i, (single, many)) in reference.iter().zip(&batched).enumerate() {
        assert_eq!(
            (single.label, single.confidence.to_bits(), single.verdict),
            (many.label, many.confidence.to_bits(), many.verdict),
            "micro-batched response for image {i} diverged from single-request execution"
        );
    }
}

/// Drives an external server over TCP: one connection per client, the
/// same closed loop, results printed only.
fn run_remote(addr: &str, smoke: bool) {
    let probe =
        RemoteClient::connect(addr).unwrap_or_else(|e| fail(format!("cannot reach {addr}: {e}")));
    let handshake = probe.handshake().clone();
    probe.goodbye().expect("goodbye");
    eprintln!(
        "# blurnet loadgen — remote {addr}: defense {:?}, dims {:?}, flush at batch {} or {} us",
        handshake.defense, handshake.input_dims, handshake.max_batch, handshake.window_us
    );

    let (client_counts, per_client): (&[usize], usize) = if smoke {
        (&[1, 4], 8)
    } else {
        (&[1, 4, 16], 64)
    };
    let images = synth_images(64, &handshake.input_dims);

    // Repeat-identity gate: the same payload must produce byte-identical
    // responses however it lands in the server's batches.
    let mut gate =
        RemoteClient::connect(addr).unwrap_or_else(|e| fail(format!("cannot reach {addr}: {e}")));
    let first = gate.classify(images[0].data()).expect("gate request");
    for _ in 0..4 {
        let again = gate.classify(images[0].data()).expect("gate request");
        assert_eq!(
            (first.label, first.confidence.to_bits(), first.verdict),
            (again.label, again.confidence.to_bits(), again.verdict),
            "remote responses for one payload diverged across requests"
        );
    }
    gate.goodbye().expect("goodbye");

    for &clients in client_counts {
        let connections: Vec<std::sync::Mutex<RemoteClient>> = (0..clients)
            .map(|_| {
                std::sync::Mutex::new(
                    RemoteClient::connect(addr)
                        .unwrap_or_else(|e| fail(format!("cannot reach {addr}: {e}"))),
                )
            })
            .collect();
        let stats = drive(clients, per_client, &images, |c, image| {
            let mut conn = connections[c].lock().expect("connection lock");
            retry_queue_full(|| conn.classify(image.data())).expect("remote classification");
        });
        stats.print("json-serve remote ");
        for conn in connections {
            conn.into_inner()
                .expect("connection lock")
                .goodbye()
                .expect("goodbye");
        }
    }
}

fn main() {
    let args = parse_args();
    match &args.connect {
        Some(addr) => run_remote(addr, args.smoke),
        None => run_local(&args),
    }
}
