//! Long-running TCP classification service over a defended model.
//!
//! ```bash
//! # Serve the input-filter defense with the default "batch 32 or 2 ms"
//! # micro-batching profile:
//! cargo run --release -p blurnet-serve --bin serve -- \
//!     --addr 127.0.0.1:7878 --defense input-filter:3
//! # Tighter latency profile, four batch workers:
//! cargo run --release -p blurnet-serve --bin serve -- \
//!     --batch-max 8 --window-us 500 --workers 4
//! ```
//!
//! The model is trained (or pulled from the variant cache) at startup via
//! the shared [`ModelZoo`]; `BLURNET_SCALE` (smoke/quick/paper) selects
//! the training effort exactly as for the experiment binaries. The
//! process then serves until killed, or until `--max-conns N` connections
//! have been handled (the shape CI's smoke run uses). `--ready-file PATH`
//! writes the bound address once the listener is up, so orchestration
//! scripts can wait for readiness without polling the port.
//!
//! Two flags skip the startup training entirely:
//!
//! * `--model-path FILE` loads a persisted `DefendedModel` (the `.bndm`
//!   files the experiment scheduler's `--cache-dir` writes) and serves
//!   it as-is — the file's own defense configuration wins over
//!   `--defense`;
//! * `--cache-dir DIR` probes the shared disk cache for the requested
//!   (defense, scale, seed) variant, trains and stores it on a miss, so
//!   repeated service restarts pay for training exactly once.
//!
//! Either way the served weights are bit-identical to the freshly trained
//! in-process model (pinned by `crates/serve/tests/from_disk.rs`).

use std::net::TcpListener;
use std::sync::atomic::{AtomicBool, AtomicI32, Ordering};
use std::sync::Arc;
use std::time::Duration;

use blurnet::{ModelZoo, Scale};
use blurnet_defenses::{model_from_file_bytes, DefendedModel, DefenseKind, DiskVariantCache};
use blurnet_serve::protocol::{serve_connections, Handshake, StreamPolicy};
use blurnet_serve::{ClassifyService, ServeConfig};
use blurnet_tensor::persist::read_file_verified;

/// Seed matching the experiment binaries (`blurnet_bench::EXPERIMENT_SEED`)
/// so the served weights are the same ones the tables were produced from.
const DEFAULT_SEED: u64 = 7;

/// Which termination signal arrived (0 = none yet). Written by the
/// async-signal handler, so it only flips an atomic — everything else
/// (logging, drain, the timeout watchdog) happens on the watcher thread.
static SIGNAL_RECEIVED: AtomicI32 = AtomicI32::new(0);

const SIGINT: i32 = 2;
const SIGTERM: i32 = 15;

extern "C" fn on_signal(signum: i32) {
    SIGNAL_RECEIVED.store(signum, Ordering::SeqCst);
}

/// Installs `on_signal` for SIGTERM and SIGINT via the C `signal()`
/// entry point (no external crates; `signal` is in every libc this
/// builds against). Best-effort: a failed install leaves the default
/// kill-immediately disposition.
fn install_signal_handlers() {
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    unsafe {
        signal(SIGTERM, on_signal as extern "C" fn(i32) as usize);
        signal(SIGINT, on_signal as extern "C" fn(i32) as usize);
    }
}

/// Bridges the signal flag to the accept loop's drain flag and enforces
/// the drain timeout: once a signal lands, the drain flag flips (the
/// accept loop stops admitting, in-flight requests finish) and a
/// watchdog countdown starts — if the process is still alive when it
/// expires, it exits 1 rather than hang forever on a stuck client.
fn spawn_drain_watcher(drain: Arc<AtomicBool>, timeout: Duration) {
    std::thread::spawn(move || loop {
        let signum = SIGNAL_RECEIVED.load(Ordering::SeqCst);
        if signum != 0 {
            eprintln!(
                "# received {}, draining (timeout {timeout:?})",
                if signum == SIGTERM {
                    "SIGTERM"
                } else {
                    "SIGINT"
                }
            );
            drain.store(true, Ordering::SeqCst);
            std::thread::sleep(timeout);
            eprintln!("serve: drain timeout expired with work still in flight");
            std::process::exit(1);
        }
        std::thread::sleep(Duration::from_millis(20));
    });
}

fn usage() -> ! {
    eprintln!(
        "usage: serve [--addr HOST:PORT] [--defense baseline|input-filter:K|feature-filter:K] \
         [--model-path FILE] [--cache-dir DIR] [--batch-max N] [--window-us U] [--workers N] \
         [--queue-depth N] [--shed] [--deadline-us U] [--seed S] [--max-conns N] \
         [--ready-file PATH] [--drain-timeout-ms MS] [--idle-timeout-ms MS (0 = off)]"
    );
    std::process::exit(2)
}

/// Reports a startup failure on stderr and exits nonzero — operational
/// errors (bad address, failed training) are not bugs, so no panic
/// backtrace.
fn fail(msg: String) -> ! {
    eprintln!("serve: {msg}");
    std::process::exit(1)
}

struct Args {
    addr: String,
    defense: DefenseKind,
    config: ServeConfig,
    seed: u64,
    max_conns: Option<usize>,
    ready_file: Option<std::path::PathBuf>,
    model_path: Option<std::path::PathBuf>,
    cache_dir: Option<std::path::PathBuf>,
    drain_timeout: Duration,
    idle_timeout: Option<Duration>,
}

fn parse_defense(spec: &str) -> Option<DefenseKind> {
    if spec == "baseline" {
        return Some(DefenseKind::Baseline);
    }
    let (name, kernel) = spec.split_once(':')?;
    let kernel: usize = kernel.parse().ok()?;
    match name {
        "input-filter" => Some(DefenseKind::InputFilter { kernel }),
        "feature-filter" => Some(DefenseKind::FeatureFilter { kernel }),
        _ => None,
    }
}

fn parse_args() -> Args {
    let mut args = Args {
        addr: "127.0.0.1:7878".to_string(),
        defense: DefenseKind::InputFilter { kernel: 3 },
        config: ServeConfig::default(),
        seed: DEFAULT_SEED,
        max_conns: None,
        ready_file: None,
        model_path: None,
        cache_dir: None,
        drain_timeout: Duration::from_millis(10_000),
        idle_timeout: Some(Duration::from_millis(30_000)),
    };
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        let mut value = || iter.next().unwrap_or_else(|| usage());
        match arg.as_str() {
            "--addr" => args.addr = value(),
            "--defense" => {
                args.defense = parse_defense(&value()).unwrap_or_else(|| usage());
            }
            "--batch-max" => {
                args.config.max_batch = value().parse().unwrap_or_else(|_| usage());
            }
            "--window-us" => {
                let us: u64 = value().parse().unwrap_or_else(|_| usage());
                args.config.flush_window = Duration::from_micros(us);
            }
            "--workers" => {
                args.config.workers = value().parse().unwrap_or_else(|_| usage());
            }
            "--queue-depth" => {
                args.config.queue_depth = value().parse().unwrap_or_else(|_| usage());
            }
            "--shed" => args.config.shed = true,
            "--deadline-us" => {
                let us: u64 = value().parse().unwrap_or_else(|_| usage());
                args.config.deadline = Some(Duration::from_micros(us));
            }
            "--seed" => args.seed = value().parse().unwrap_or_else(|_| usage()),
            "--max-conns" => {
                args.max_conns = Some(value().parse().unwrap_or_else(|_| usage()));
            }
            "--ready-file" => args.ready_file = Some(value().into()),
            "--model-path" => args.model_path = Some(value().into()),
            "--cache-dir" => args.cache_dir = Some(value().into()),
            "--drain-timeout-ms" => {
                let ms: u64 = value().parse().unwrap_or_else(|_| usage());
                args.drain_timeout = Duration::from_millis(ms);
            }
            "--idle-timeout-ms" => {
                let ms: u64 = value().parse().unwrap_or_else(|_| usage());
                args.idle_timeout = (ms > 0).then(|| Duration::from_millis(ms));
            }
            _ => usage(),
        }
    }
    args
}

/// Produces the model to serve: a persisted file (`--model-path`) wins,
/// then the shared disk cache (`--cache-dir`, trained and stored on a
/// miss), then an in-process training via the [`ModelZoo`].
fn resolve_model(args: &Args, scale: Scale) -> Arc<DefendedModel> {
    if let Some(path) = &args.model_path {
        let bytes = read_file_verified(path)
            .unwrap_or_else(|e| fail(format!("cannot read {}: {e}", path.display())));
        let model = model_from_file_bytes(&bytes)
            .unwrap_or_else(|e| fail(format!("cannot decode {}: {e}", path.display())));
        eprintln!(
            "# loaded {} ({} defense)",
            path.display(),
            model.defense().label()
        );
        return Arc::new(model);
    }

    if let Some(dir) = &args.cache_dir {
        let cache = DiskVariantCache::open(dir)
            .unwrap_or_else(|e| fail(format!("cannot open cache {}: {e}", dir.display())));
        let train = scale.train_config();
        let image_size = scale.dataset_config().image_size;
        let num_classes = blurnet::data::NUM_CLASSES;
        match cache.load(&args.defense, &train, image_size, num_classes, args.seed) {
            Ok(Some(model)) => {
                eprintln!(
                    "# cache hit: {} from {}",
                    args.defense.label(),
                    dir.display()
                );
                return Arc::new(model);
            }
            Ok(None) => {}
            Err(e) => eprintln!("# cache entry unreadable ({e}); retraining"),
        }
        let mut zoo = ModelZoo::new(scale, args.seed)
            .unwrap_or_else(|e| fail(format!("failed to build the model zoo: {e}")));
        let model = zoo
            .get_or_train_shared(&args.defense)
            .unwrap_or_else(|e| fail(format!("failed to train the model: {e}")));
        match cache.store(&model, &train, image_size, num_classes, args.seed) {
            Ok(path) => eprintln!("# cached trained model at {}", path.display()),
            Err(e) => eprintln!("# warning: could not cache the trained model: {e}"),
        }
        return model;
    }

    let mut zoo = ModelZoo::new(scale, args.seed)
        .unwrap_or_else(|e| fail(format!("failed to build the model zoo: {e}")));
    zoo.get_or_train_shared(&args.defense)
        .unwrap_or_else(|e| fail(format!("failed to train/load the model: {e}")))
}

fn main() {
    let args = parse_args();
    let scale = Scale::from_env();
    let model = resolve_model(&args, scale);
    eprintln!(
        "# blurnet serve — scale: {scale}, defense: {}, flush at batch {} or {:?}, {} worker(s), kernels: {}",
        model.defense().label(),
        args.config.max_batch.max(1),
        args.config.flush_window,
        args.config.workers.max(1),
        blurnet_tensor::default_backend().simd_tier(),
    );

    let max_batch = args.config.max_batch.max(1);
    let flush_window = args.config.flush_window;
    let service = ClassifyService::new(Arc::clone(&model), args.config)
        .unwrap_or_else(|e| fail(format!("cannot start the service: {e}")));
    let handshake = Handshake::new(service.info(), max_batch, flush_window);
    let client = service.client();

    let listener = TcpListener::bind(&args.addr)
        .unwrap_or_else(|e| fail(format!("cannot bind {}: {e}", args.addr)));
    let bound = listener
        .local_addr()
        .map(|a| a.to_string())
        .unwrap_or_else(|_| args.addr.clone());
    eprintln!("# listening on {bound}");
    if let Some(path) = &args.ready_file {
        std::fs::write(path, &bound)
            .unwrap_or_else(|e| fail(format!("cannot write ready file {}: {e}", path.display())));
    }

    // Graceful drain: SIGTERM/SIGINT flip an atomic, the watcher thread
    // flips the drain flag, the accept loop stops admitting, every
    // in-flight request is answered, and the process exits 0 — or 1 if
    // the drain timeout expires first.
    let drain = Arc::new(AtomicBool::new(false));
    install_signal_handlers();
    spawn_drain_watcher(Arc::clone(&drain), args.drain_timeout);
    let policy = StreamPolicy {
        idle_timeout: args.idle_timeout,
        drain: Some(Arc::clone(&drain)),
    };

    if let Err(e) = serve_connections(&listener, &client, &handshake, args.max_conns, &policy) {
        eprintln!("serve: listener failed: {e}");
        std::process::exit(1);
    }
    let health = service.health();
    if health != blurnet_serve::ServiceHealth::default() {
        eprintln!(
            "# supervisor respawned {} batcher(s) and {} worker(s) during the run",
            health.batcher_restarts, health.worker_restarts
        );
    }
    service
        .shutdown()
        .unwrap_or_else(|e| fail(format!("shutdown failed: {e}")));
    if drain.load(Ordering::SeqCst) {
        eprintln!("# drained cleanly");
    }
    std::process::exit(0);
}
