//! Error type for the serving subsystem.

use std::fmt;

/// Everything that can go wrong between a request and its response.
#[derive(Debug)]
pub enum ServeError {
    /// The request payload is malformed (wrong shape, wrong byte count).
    BadInput(String),
    /// The service configuration is unusable (e.g. a non-deterministic
    /// defense that cannot honor the bit-identity guarantee).
    BadConfig(String),
    /// The service is shutting down (or has shut down); the request was
    /// not processed.
    Shutdown(String),
    /// A batch worker failed while evaluating the model.
    Worker(String),
    /// The admission queue is full and the service is configured to shed
    /// load instead of blocking; retry with backoff.
    QueueFull,
    /// The request's deadline passed while it was still queued; it was
    /// shed without being evaluated.
    DeadlineExceeded,
    /// The connection sent no bytes for longer than the configured
    /// idle-read deadline (slowloris defense); it was disconnected.
    IdleTimeout(std::time::Duration),
    /// A socket-level failure in the TCP protocol layer.
    Io(std::io::Error),
    /// A malformed message on the TCP wire.
    Protocol(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::BadInput(msg) => write!(f, "bad request: {msg}"),
            ServeError::BadConfig(msg) => write!(f, "bad serve config: {msg}"),
            ServeError::Shutdown(msg) => write!(f, "service shutting down: {msg}"),
            ServeError::Worker(msg) => write!(f, "batch worker failed: {msg}"),
            ServeError::QueueFull => {
                write!(
                    f,
                    "queue full: admission queue is shedding load, retry with backoff"
                )
            }
            ServeError::DeadlineExceeded => {
                write!(f, "deadline exceeded: request shed before evaluation")
            }
            ServeError::IdleTimeout(limit) => {
                write!(f, "idle timeout: no bytes from the client for {limit:?}")
            }
            ServeError::Io(e) => write!(f, "io error: {e}"),
            ServeError::Protocol(msg) => write!(f, "protocol error: {msg}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e)
    }
}

impl From<blurnet_nn::NnError> for ServeError {
    fn from(e: blurnet_nn::NnError) -> Self {
        ServeError::Worker(e.to_string())
    }
}

impl From<blurnet_tensor::TensorError> for ServeError {
    fn from(e: blurnet_tensor::TensorError) -> Self {
        ServeError::Worker(e.to_string())
    }
}

impl From<blurnet_defenses::DefenseError> for ServeError {
    fn from(e: blurnet_defenses::DefenseError) -> Self {
        ServeError::Worker(e.to_string())
    }
}
