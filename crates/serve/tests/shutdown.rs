//! Shutdown semantics: every request admitted before the close is
//! answered, late submissions fail fast, and the join never deadlocks.

use std::sync::Arc;
use std::time::Duration;

use blurnet_defenses::DefenseKind;
use blurnet_serve::{ClassifyService, ServeConfig, ServeError};
use blurnet_test_support::{tiny_defended_model, uniform_images, TINY_IMAGE_SIZE};

#[test]
fn in_flight_requests_drain_on_shutdown() {
    let model = Arc::new(tiny_defended_model(DefenseKind::Baseline, 9));
    let images = uniform_images(32, TINY_IMAGE_SIZE, 13);
    let service = ClassifyService::new(
        Arc::clone(&model),
        ServeConfig {
            max_batch: 8,
            // A long window so a whole backlog is typically still queued
            // (not yet flushed) when the shutdown lands.
            flush_window: Duration::from_millis(50),
            workers: 2,
            queue_depth: 64,
            ..ServeConfig::default()
        },
    )
    .expect("service starts");
    let client = service.client();

    // Admit a backlog, then shut down while it is in flight. Every
    // ticket must still resolve to a real answer.
    let tickets: Vec<_> = images
        .iter()
        .map(|image| client.submit(image.clone()).expect("admitted before close"))
        .collect();
    service.shutdown().expect("drains and joins");
    for (i, ticket) in tickets.into_iter().enumerate() {
        let answer = ticket
            .wait()
            .unwrap_or_else(|e| panic!("request {i} admitted before shutdown was dropped: {e}"));
        assert!(answer.confidence.is_finite());
    }

    // The service is gone; the surviving client handle must refuse new
    // work instead of hanging.
    let err = client.submit(images[0].clone()).expect_err("queue closed");
    assert!(matches!(err, ServeError::Shutdown(_)));
}

#[test]
fn drop_drains_like_shutdown() {
    let model = Arc::new(tiny_defended_model(DefenseKind::Baseline, 21));
    let images = uniform_images(8, TINY_IMAGE_SIZE, 31);
    let tickets;
    {
        let service = ClassifyService::new(Arc::clone(&model), ServeConfig::default())
            .expect("service starts");
        let client = service.client();
        tickets = images
            .iter()
            .map(|image| client.submit(image.clone()).expect("admitted"))
            .collect::<Vec<_>>();
        // `service` dropped here, mid-backlog.
    }
    for ticket in tickets {
        ticket.wait().expect("answered despite the drop");
    }
}

#[test]
fn shutdown_with_no_traffic_does_not_deadlock() {
    let model = Arc::new(tiny_defended_model(DefenseKind::Baseline, 2));
    for workers in [1, 4] {
        let service = ClassifyService::new(
            Arc::clone(&model),
            ServeConfig {
                workers,
                ..ServeConfig::default()
            },
        )
        .expect("service starts");
        service.shutdown().expect("idle shutdown joins");
    }
}
