//! Chaos suite for the serving fault sites (`serve.*`, plus the queue
//! sites underneath the admission/batch queues): every registered serve
//! fault point is exercised one at a time, and the survival invariants
//! are asserted each time:
//!
//! * every request submitted before shutdown gets an answer — a panic in
//!   a service thread is never a dropped reply channel;
//! * every **surviving** response is bit-identical to the single-request
//!   reference path, whatever recovery (re-enqueue, respawn, bisection)
//!   happened around it;
//! * a poisoned request is isolated to itself: only it receives an
//!   error, and its batch-mates still get their exact answers.
//!
//! The fault registry is process-global, so every test serializes around
//! one lock. Compile with `--features fault-injection`.

#![cfg(feature = "fault-injection")]

use std::io::BufRead;
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Duration;

use blurnet::fault::{self, sites, FaultKind, FaultSpec, MARKER};
use blurnet_defenses::DefenseKind;
use blurnet_serve::protocol::{serve_stream, Handshake, StreamPolicy};
use blurnet_serve::{
    classify_single, Classification, ClassifyService, ServeConfig, ServeError, ServiceHealth,
};
use blurnet_tensor::Tensor;
use blurnet_test_support::{tiny_defended_model, uniform_images, TINY_IMAGE_SIZE};

/// The registry is global; chaos tests serialize around this lock.
static LOCK: Mutex<()> = Mutex::new(());

fn serialized() -> MutexGuard<'static, ()> {
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn bits(c: &Classification) -> (usize, u32, blurnet_serve::DefenseVerdict) {
    (c.label, c.confidence.to_bits(), c.verdict)
}

/// A fresh model + image set + disarm-computed reference answers.
fn fixture(
    seed: u64,
    n: usize,
) -> (
    Arc<blurnet_defenses::DefendedModel>,
    Vec<Tensor>,
    Vec<Classification>,
) {
    fault::disarm_all();
    let model = Arc::new(tiny_defended_model(DefenseKind::Baseline, seed));
    let images = uniform_images(n, TINY_IMAGE_SIZE, seed ^ 0x5eed);
    let reference = images
        .iter()
        .map(|image| classify_single(&model, image).expect("reference path"))
        .collect();
    (model, images, reference)
}

fn service(model: &Arc<blurnet_defenses::DefendedModel>, config: ServeConfig) -> ClassifyService {
    ClassifyService::new(Arc::clone(model), config).expect("service starts")
}

/// Submits every image concurrently and returns per-image results.
fn classify_all(
    service: &ClassifyService,
    images: &[Tensor],
) -> Vec<blurnet_serve::Result<Classification>> {
    let handle = service.client();
    std::thread::scope(|scope| {
        let workers: Vec<_> = images
            .iter()
            .map(|image| {
                let handle = handle.clone();
                let image = image.clone();
                scope.spawn(move || handle.classify(image))
            })
            .collect();
        workers
            .into_iter()
            .map(|w| w.join().expect("submitting thread"))
            .collect()
    })
}

#[test]
fn a_poison_request_is_bisected_out_of_its_batch() {
    let _guard = serialized();
    let (model, images, reference) = fixture(11, 8);
    let poison_tag = fault::tag_f32s(images[3].data());
    fault::arm(
        sites::SERVE_WORKER_REQUEST,
        FaultSpec::always(FaultKind::Panic).tagged(poison_tag),
    );

    // One worker, a wide batch and a generous window: the poison shares a
    // coalesced batch with as many victims as possible.
    let svc = service(
        &model,
        ServeConfig {
            max_batch: 8,
            flush_window: Duration::from_millis(5),
            workers: 1,
            queue_depth: 64,
            ..ServeConfig::default()
        },
    );
    let results = classify_all(&svc, &images);
    let health = svc.health();
    svc.shutdown().expect("clean shutdown");
    assert!(fault::fires(sites::SERVE_WORKER_REQUEST) >= 1);
    fault::disarm_all();

    for (i, result) in results.iter().enumerate() {
        if i == 3 {
            let err = result.as_ref().expect_err("the poison request errors");
            assert!(
                matches!(err, ServeError::Worker(_)) && err.to_string().contains(MARKER),
                "poison should surface the injected panic, got: {err}"
            );
        } else {
            let answer = result.as_ref().expect("batch-mates are answered");
            assert_eq!(
                bits(answer),
                bits(&reference[i]),
                "batch-mate {i} must be bit-identical to single-request execution"
            );
        }
    }
    // Bisection recovers in place — no thread ever died.
    assert_eq!(health, ServiceHealth::default());
}

#[test]
fn a_worker_panic_respawns_and_the_batch_survives() {
    let _guard = serialized();
    let (model, images, reference) = fixture(13, 6);
    fault::arm(
        sites::SERVE_WORKER_BATCH,
        FaultSpec::on_hit(FaultKind::Panic, 1),
    );

    // A single worker: its death leaves nobody to serve until the
    // supervisor respawns it — the strongest form of the scenario.
    let svc = service(
        &model,
        ServeConfig {
            max_batch: 32,
            flush_window: Duration::from_millis(2),
            workers: 1,
            queue_depth: 64,
            ..ServeConfig::default()
        },
    );
    let results = classify_all(&svc, &images);
    let health = svc.health();
    svc.shutdown().expect("clean shutdown");
    assert_eq!(fault::fires(sites::SERVE_WORKER_BATCH), 1);
    fault::disarm_all();

    for (i, result) in results.iter().enumerate() {
        let answer = result.as_ref().expect("every request is answered");
        assert_eq!(bits(answer), bits(&reference[i]), "request {i} diverged");
    }
    assert!(
        health.worker_restarts >= 1,
        "the supervisor should have respawned the dead worker: {health:?}"
    );
}

#[test]
fn a_batcher_panic_respawns_and_no_request_is_dropped() {
    let _guard = serialized();
    let (model, images, reference) = fixture(17, 6);
    fault::arm(
        sites::SERVE_BATCH_FLUSH,
        FaultSpec::on_hit(FaultKind::Panic, 1),
    );

    let svc = service(
        &model,
        ServeConfig {
            max_batch: 4,
            flush_window: Duration::from_millis(1),
            workers: 2,
            queue_depth: 64,
            ..ServeConfig::default()
        },
    );
    let results = classify_all(&svc, &images);
    let health = svc.health();
    svc.shutdown().expect("clean shutdown");
    assert_eq!(fault::fires(sites::SERVE_BATCH_FLUSH), 1);
    fault::disarm_all();

    for (i, result) in results.iter().enumerate() {
        let answer = result.as_ref().expect("every request is answered");
        assert_eq!(bits(answer), bits(&reference[i]), "request {i} diverged");
    }
    assert!(
        health.batcher_restarts >= 1,
        "the supervisor should have respawned the dead batcher: {health:?}"
    );
}

#[test]
fn queue_faults_under_the_service_change_no_response() {
    let _guard = serialized();
    let (model, images, reference) = fixture(19, 8);

    for site in [
        sites::QUEUE_PUSH,
        sites::QUEUE_POP,
        sites::QUEUE_POP_TIMEOUT,
    ] {
        fault::disarm_all();
        fault::arm(site, FaultSpec::seeded(FaultKind::Error, 0xCAFE, 0.25));
        let svc = service(
            &model,
            ServeConfig {
                max_batch: 4,
                flush_window: Duration::from_micros(200),
                workers: 2,
                queue_depth: 8,
                ..ServeConfig::default()
            },
        );
        let results = classify_all(&svc, &images);
        svc.shutdown().expect("clean shutdown");
        assert!(fault::hits(site) > 0, "{site}: fault point never reached");

        for (i, result) in results.iter().enumerate() {
            let answer = result
                .as_ref()
                .unwrap_or_else(|e| panic!("{site}: request {i} failed: {e}"));
            assert_eq!(
                bits(answer),
                bits(&reference[i]),
                "{site}: request {i} diverged"
            );
        }
    }
    fault::disarm_all();
}

#[test]
fn shedding_maps_a_refused_admission_to_queue_full() {
    let _guard = serialized();
    let (model, images, _) = fixture(23, 1);
    fault::arm(sites::QUEUE_PUSH, FaultSpec::on_hit(FaultKind::Error, 1));

    let svc = service(
        &model,
        ServeConfig {
            shed: true,
            ..ServeConfig::default()
        },
    );
    let client = svc.client();
    // First admission takes the injected refusal: under shedding this is
    // an explicit, retryable rejection — not a block, not a panic.
    let err = client
        .submit(images[0].clone())
        .expect_err("the injected refusal surfaces");
    assert!(matches!(err, ServeError::QueueFull), "got: {err}");
    // The retry (the loadgen backoff path) goes through.
    let answer = client.classify(images[0].clone()).expect("retry succeeds");
    fault::disarm_all();
    let reference = classify_single(&model, &images[0]).expect("reference");
    assert_eq!(bits(&answer), bits(&reference));
    svc.shutdown().expect("clean shutdown");
}

#[test]
fn a_tcp_frame_fault_errors_one_request_and_keeps_the_connection() {
    let _guard = serialized();
    let (model, images, reference) = fixture(29, 1);
    fault::arm(
        sites::SERVE_TCP_FRAME,
        FaultSpec::on_hit(FaultKind::Error, 1),
    );

    let svc = service(&model, ServeConfig::default());
    let handshake = Handshake::new(svc.info(), 32, Duration::from_millis(2));
    let elements = handshake.elements();

    // Two identical framed requests, then goodbye.
    let mut request = Vec::new();
    for _ in 0..2 {
        request.extend_from_slice(&(elements as u32).to_le_bytes());
        for v in images[0].data() {
            request.extend_from_slice(&v.to_bits().to_le_bytes());
        }
    }
    request.extend_from_slice(&0u32.to_le_bytes());

    let client = svc.client();
    let mut reader: &[u8] = &request;
    let mut response = Vec::new();
    serve_stream(
        &mut reader,
        &mut response,
        &client,
        &handshake,
        &StreamPolicy::default(),
    )
    .expect("stream serves");
    assert_eq!(fault::fires(sites::SERVE_TCP_FRAME), 1);
    fault::disarm_all();
    svc.shutdown().expect("clean shutdown");

    // Skip the handshake line, then parse both responses.
    let mut body: &[u8] = &response;
    let mut line = String::new();
    body.read_line(&mut line).expect("handshake line");
    assert!(Handshake::from_json(line.trim_end()).is_ok());

    // First response: status 1 (error), message carries the marker.
    assert_eq!(body[0], 1, "first frame takes the injected error");
    let len = u32::from_le_bytes([body[1], body[2], body[3], body[4]]) as usize;
    let msg = String::from_utf8_lossy(&body[5..5 + len]);
    assert!(msg.contains(MARKER), "error should carry the marker: {msg}");
    body = &body[5 + len..];

    // Second response on the SAME connection: status 0 (ok), bit-identical.
    assert_eq!(body[0], 0, "the connection survives the faulted frame");
    let label = u32::from_le_bytes([body[1], body[2], body[3], body[4]]) as usize;
    let confidence_bits = u32::from_le_bytes([body[5], body[6], body[7], body[8]]);
    assert_eq!(label, reference[0].label);
    assert_eq!(confidence_bits, reference[0].confidence.to_bits());
}

#[test]
fn every_serve_fault_site_has_a_chaos_scenario() {
    // The sites this suite exercises; the root `tests/chaos.rs` owns the
    // `core.sched.*` half of the registry (the queue sites appear in
    // both — they sit under both subsystems).
    let covered = [
        sites::QUEUE_PUSH,
        sites::QUEUE_POP,
        sites::QUEUE_POP_TIMEOUT,
        sites::SERVE_BATCH_FLUSH,
        sites::SERVE_WORKER_BATCH,
        sites::SERVE_WORKER_REQUEST,
        sites::SERVE_TCP_FRAME,
    ];
    for site in fault::all_sites() {
        if site.starts_with("serve.") || site.starts_with("core.queue.") {
            assert!(
                covered.contains(site),
                "serve-side fault site {site} has no chaos scenario"
            );
        }
    }
}
