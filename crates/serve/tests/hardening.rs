//! Protocol- and admission-hardening regression tests: oversized frames
//! are refused per-request without dropping the connection, non-finite
//! payloads are rejected before they reach the engine, and per-request
//! deadlines surface as the dedicated `deadline_exceeded` status. These
//! run without the `fault-injection` feature — they cover the always-on
//! hardening, not the injected-fault paths.

use std::io::BufRead;
use std::sync::Arc;
use std::time::Duration;

use blurnet_defenses::DefenseKind;
use blurnet_serve::protocol::{serve_stream, Handshake, StreamPolicy, MAX_FRAME_ELEMENTS};
use blurnet_serve::{ClassifyService, ServeConfig, ServeError};
use blurnet_tensor::Tensor;
use blurnet_test_support::{tiny_defended_model, uniform_images, TINY_IMAGE_SIZE};

fn service(config: ServeConfig) -> ClassifyService {
    let model = Arc::new(tiny_defended_model(DefenseKind::Baseline, 3));
    ClassifyService::new(model, config).expect("service starts")
}

fn frame(values: &[f32]) -> Vec<u8> {
    let mut bytes = Vec::with_capacity(4 + values.len() * 4);
    bytes.extend_from_slice(&(values.len() as u32).to_le_bytes());
    for v in values {
        bytes.extend_from_slice(&v.to_bits().to_le_bytes());
    }
    bytes
}

/// Runs `request` through the in-memory stream server and returns the
/// response bytes with the handshake line already consumed.
fn drive(svc: &ClassifyService, request: &[u8]) -> Vec<u8> {
    let handshake = Handshake::new(svc.info(), 4, Duration::from_millis(1));
    let client = svc.client();
    let mut reader: &[u8] = request;
    let mut response = Vec::new();
    serve_stream(
        &mut reader,
        &mut response,
        &client,
        &handshake,
        &StreamPolicy::default(),
    )
    .expect("stream serves");
    let mut body: &[u8] = &response;
    let mut line = String::new();
    body.read_line(&mut line).expect("handshake line");
    assert!(Handshake::from_json(line.trim_end()).is_ok());
    body.to_vec()
}

/// A reader that yields its prefix then stalls forever with `WouldBlock`
/// — a slowloris client holding the connection open after a partial
/// frame. (Real TCP sockets surface the same kind once the per-stream
/// read timeout `serve_connections` installs expires.)
struct StalledReader {
    prefix: std::io::Cursor<Vec<u8>>,
}

impl std::io::Read for StalledReader {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let n = std::io::Read::read(&mut self.prefix, buf)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::WouldBlock,
                "client stalled",
            ));
        }
        Ok(n)
    }
}

#[test]
fn a_slowloris_client_is_disconnected_by_the_idle_deadline() {
    let svc = service(ServeConfig::default());
    let handshake = Handshake::new(svc.info(), 4, Duration::from_millis(1));
    let client = svc.client();

    // Two bytes of a length prefix, then silence forever.
    let mut reader = std::io::BufReader::new(StalledReader {
        prefix: std::io::Cursor::new(vec![0x10, 0x00]),
    });
    let mut response = Vec::new();
    let policy = StreamPolicy {
        idle_timeout: Some(Duration::from_millis(50)),
        drain: None,
    };
    let err = serve_stream(&mut reader, &mut response, &client, &handshake, &policy)
        .expect_err("a stalled client must not hold the stream forever");
    assert!(
        matches!(err, ServeError::IdleTimeout(_)),
        "expected the typed idle-timeout error, got: {err}"
    );
    svc.shutdown().expect("clean shutdown");
}

#[test]
fn without_a_deadline_a_drain_flag_ends_the_stream_at_the_boundary() {
    use std::sync::atomic::{AtomicBool, Ordering};

    let svc = service(ServeConfig::default());
    let elements = svc.info().input_dims.iter().product::<usize>();
    let handshake = Handshake::new(svc.info(), 4, Duration::from_millis(1));
    let client = svc.client();

    // A full well-formed request is waiting, but the drain flag is
    // already up: the server must not admit it.
    let mut request = frame(&vec![0.5; elements]);
    request.extend_from_slice(&0u32.to_le_bytes());
    let mut reader: &[u8] = &request;
    let mut response = Vec::new();
    let drain = std::sync::Arc::new(AtomicBool::new(true));
    let policy = StreamPolicy {
        idle_timeout: None,
        drain: Some(std::sync::Arc::clone(&drain)),
    };
    serve_stream(&mut reader, &mut response, &client, &handshake, &policy)
        .expect("drain is a clean goodbye");

    // Response holds the handshake line and nothing else — the queued
    // request was never admitted.
    let mut body: &[u8] = &response;
    let mut line = String::new();
    body.read_line(&mut line).expect("handshake line");
    assert!(Handshake::from_json(line.trim_end()).is_ok());
    assert!(
        body.is_empty(),
        "no request may be admitted after the drain flag flips"
    );
    drain.store(false, Ordering::Relaxed);
    svc.shutdown().expect("clean shutdown");
}

#[test]
fn an_oversized_frame_is_refused_and_the_connection_survives() {
    let svc = service(ServeConfig::default());
    let elements = svc.info().input_dims.iter().product::<usize>();

    // One frame over the cap (with its full payload, which the server
    // must drain without allocating), then a well-formed frame, then
    // goodbye.
    let oversized = MAX_FRAME_ELEMENTS + 1;
    let mut request = Vec::new();
    request.extend_from_slice(&(oversized as u32).to_le_bytes());
    request.extend(std::iter::repeat_n(0u8, oversized * 4));
    request.extend_from_slice(&frame(&vec![0.5; elements]));
    request.extend_from_slice(&0u32.to_le_bytes());

    let body = drive(&svc, &request);

    // First response: a per-request error naming the cap.
    assert_eq!(body[0], 1, "oversized frame answers with an error status");
    let len = u32::from_le_bytes([body[1], body[2], body[3], body[4]]) as usize;
    let msg = String::from_utf8_lossy(&body[5..5 + len]);
    assert!(
        msg.contains("exceeds") && msg.contains(&MAX_FRAME_ELEMENTS.to_string()),
        "error should name the cap: {msg}"
    );

    // Second response on the SAME connection: a normal classification.
    let rest = &body[5 + len..];
    assert_eq!(rest[0], 0, "the connection stays usable after the refusal");
    assert_eq!(
        rest.len(),
        10,
        "ok response is status + label + confidence + verdict"
    );
    svc.shutdown().expect("clean shutdown");
}

#[test]
fn a_non_finite_payload_is_rejected_before_the_engine() {
    let svc = service(ServeConfig::default());
    let elements = svc.info().input_dims.iter().product::<usize>();

    let mut poisoned = vec![0.25f32; elements];
    poisoned[7] = f32::NAN;
    let mut request = frame(&poisoned);
    request.extend_from_slice(&frame(&vec![0.25; elements]));
    request.extend_from_slice(&0u32.to_le_bytes());

    let body = drive(&svc, &request);
    assert_eq!(body[0], 1, "NaN payload answers with an error status");
    let len = u32::from_le_bytes([body[1], body[2], body[3], body[4]]) as usize;
    let msg = String::from_utf8_lossy(&body[5..5 + len]);
    assert!(msg.contains("non-finite"), "error should say why: {msg}");

    // The clean follow-up frame still classifies.
    let rest = &body[5 + len..];
    assert_eq!(
        rest[0], 0,
        "the connection stays usable after the rejection"
    );
    svc.shutdown().expect("clean shutdown");
}

#[test]
fn submit_rejects_non_finite_images_directly() {
    let svc = service(ServeConfig::default());
    let dims = svc.info().input_dims;
    let elements = dims.iter().product::<usize>();

    for bad in [f32::NAN, f32::INFINITY, f32::NEG_INFINITY] {
        let mut values = vec![0.5f32; elements];
        values[0] = bad;
        let image = Tensor::from_vec(values, &dims).expect("shape is valid");
        let err = svc
            .client()
            .submit(image)
            .expect_err("non-finite values must be refused at admission");
        assert!(
            matches!(err, ServeError::BadInput(ref msg) if msg.contains("non-finite")),
            "got: {err}"
        );
    }
    svc.shutdown().expect("clean shutdown");
}

#[test]
fn an_expired_deadline_sheds_the_request_with_its_own_error() {
    // A zero deadline expires before the batcher can possibly flush it.
    let svc = service(ServeConfig {
        deadline: Some(Duration::ZERO),
        flush_window: Duration::from_millis(5),
        ..ServeConfig::default()
    });
    let image = uniform_images(1, TINY_IMAGE_SIZE, 9).remove(0);
    let err = svc
        .client()
        .classify(image)
        .expect_err("a zero deadline can never be met");
    assert!(matches!(err, ServeError::DeadlineExceeded), "got: {err}");
    svc.shutdown().expect("clean shutdown");
}

#[test]
fn an_expired_deadline_maps_to_the_deadline_status_byte() {
    let svc = service(ServeConfig {
        deadline: Some(Duration::ZERO),
        flush_window: Duration::from_millis(5),
        ..ServeConfig::default()
    });
    let elements = svc.info().input_dims.iter().product::<usize>();
    let mut request = frame(&vec![0.5; elements]);
    request.extend_from_slice(&0u32.to_le_bytes());

    let body = drive(&svc, &request);
    // Status 3 = deadline_exceeded, deliberately body-less so clients can
    // cheaply retry without parsing.
    assert_eq!(body, vec![3u8]);
    svc.shutdown().expect("clean shutdown");
}
