//! End-to-end TCP protocol tests: handshake, concurrent connections
//! coalescing into shared batches, error responses, goodbye.

use std::net::TcpListener;
use std::sync::Arc;
use std::time::Duration;

use blurnet_defenses::DefenseKind;
use blurnet_serve::protocol::{serve_connections, Handshake, RemoteClient, StreamPolicy, SCHEMA};
use blurnet_serve::{classify_single, ClassifyService, ServeConfig};
use blurnet_test_support::{tiny_defended_model, uniform_images, TINY_IMAGE_SIZE};

/// Starts a service + TCP server for `max_conns` connections on an
/// OS-assigned port; returns the address and the server thread.
fn spawn_server(
    service: &ClassifyService,
    config: &ServeConfig,
    max_conns: usize,
) -> (String, std::thread::JoinHandle<()>) {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind an ephemeral port");
    let addr = listener.local_addr().expect("bound address").to_string();
    let client = service.client();
    let handshake = Handshake::new(service.info(), config.max_batch, config.flush_window);
    let server = std::thread::spawn(move || {
        serve_connections(
            &listener,
            &client,
            &handshake,
            Some(max_conns),
            &StreamPolicy::default(),
        )
        .expect("serve loop");
    });
    (addr, server)
}

#[test]
fn tcp_roundtrip_matches_reference_bitwise() {
    let model = Arc::new(tiny_defended_model(
        DefenseKind::InputFilter { kernel: 3 },
        7,
    ));
    let images = uniform_images(12, TINY_IMAGE_SIZE, 19);
    let config = ServeConfig {
        max_batch: 8,
        flush_window: Duration::from_micros(200),
        workers: 2,
        queue_depth: 64,
        ..ServeConfig::default()
    };
    let service = ClassifyService::new(Arc::clone(&model), config.clone()).expect("service");
    let (addr, server) = spawn_server(&service, &config, 3);

    // Three concurrent connections hammering the same service, so their
    // requests mix in the micro-batcher.
    let answers: Vec<Vec<_>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..3)
            .map(|_| {
                let addr = addr.clone();
                let images = &images;
                scope.spawn(move || {
                    let mut conn = RemoteClient::connect(&addr).expect("connect");
                    assert_eq!(conn.handshake().schema, SCHEMA);
                    assert_eq!(
                        conn.handshake().input_dims,
                        [3, TINY_IMAGE_SIZE, TINY_IMAGE_SIZE]
                    );
                    let answers: Vec<_> = images
                        .iter()
                        .map(|image| conn.classify(image.data()).expect("remote classify"))
                        .collect();
                    conn.goodbye().expect("goodbye");
                    answers
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("connection thread"))
            .collect()
    });
    server.join().expect("server thread");
    service.shutdown().expect("clean shutdown");

    for per_connection in &answers {
        for (image, got) in images.iter().zip(per_connection) {
            let want = classify_single(&model, image).expect("reference");
            assert_eq!(
                (want.label, want.confidence.to_bits(), want.verdict),
                (got.label, got.confidence.to_bits(), got.verdict),
                "TCP response diverged from the single-request reference"
            );
        }
    }
}

#[test]
fn tcp_reports_bad_sizes_and_keeps_the_connection() {
    let model = Arc::new(tiny_defended_model(DefenseKind::Baseline, 5));
    let config = ServeConfig::default();
    let service = ClassifyService::new(Arc::clone(&model), config.clone()).expect("service");
    let (addr, server) = spawn_server(&service, &config, 1);

    let mut conn = RemoteClient::connect(&addr).expect("connect");
    let image = &uniform_images(1, TINY_IMAGE_SIZE, 3)[0];

    // Undersized payload: the client refuses locally.
    assert!(conn.classify(&image.data()[..4]).is_err());
    // A good request afterwards still works on the same connection.
    let ok = conn.classify(image.data()).expect("valid request");
    assert!(ok.label < 18);
    conn.goodbye().expect("goodbye");

    server.join().expect("server thread");
    service.shutdown().expect("clean shutdown");
}
