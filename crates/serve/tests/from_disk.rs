//! Serving from disk: a `DefendedModel` loaded back from its persisted
//! `.bndm` file (the `--model-path` / `--cache-dir` startup paths of the
//! `serve` binary) must answer **bitwise identically** to the freshly
//! trained in-process model — through the single-request oracle
//! (`classify_single`) and through the micro-batching service.

use std::sync::Arc;

use blurnet_defenses::{
    model_from_file_bytes, model_to_bytes, DefenseKind, DiskVariantCache, TrainConfig,
};
use blurnet_serve::{classify_single, Classification, ClassifyService, ServeConfig};
use blurnet_tensor::persist::{read_file_verified, write_file_atomic};
use blurnet_test_support::{tiny_defended_model, uniform_images, TINY_IMAGE_SIZE};

fn bits(c: &Classification) -> (usize, u32, blurnet_serve::DefenseVerdict) {
    (c.label, c.confidence.to_bits(), c.verdict)
}

/// A scratch dir under the system temp dir, removed on drop.
struct TempDir(std::path::PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let dir =
            std::env::temp_dir().join(format!("blurnet-from-disk-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create temp dir");
        TempDir(dir)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

#[test]
fn a_model_loaded_from_file_answers_bitwise_like_the_oracle() {
    let dir = TempDir::new("model-path");
    for defense in [
        DefenseKind::Baseline,
        DefenseKind::InputFilter { kernel: 3 },
        DefenseKind::FeatureFilter { kernel: 3 },
    ] {
        let fresh = Arc::new(tiny_defended_model(defense.clone(), 11));
        let images = uniform_images(12, TINY_IMAGE_SIZE, 17);
        let oracle: Vec<_> = images
            .iter()
            .map(|image| classify_single(&fresh, image).expect("oracle path"))
            .collect();

        // The exact bytes `serve --model-path` reads: the checksummed
        // container around the model record.
        let path = dir.0.join("model.bndm");
        write_file_atomic(&path, &model_to_bytes(&fresh).expect("serializes"))
            .expect("atomic write");
        let loaded = Arc::new(
            model_from_file_bytes(&read_file_verified(&path).expect("verified read"))
                .expect("decodes"),
        );
        assert_eq!(loaded.defense(), fresh.defense());

        for (i, (image, expected)) in images.iter().zip(&oracle).enumerate() {
            let got = classify_single(&loaded, image).expect("loaded model answers");
            assert_eq!(
                bits(expected),
                bits(&got),
                "image {i} diverged after disk roundtrip ({})",
                defense.label()
            );
        }
    }
}

#[test]
fn the_batched_service_over_a_cached_model_matches_the_fresh_one() {
    let dir = TempDir::new("cache-dir");
    let defense = DefenseKind::InputFilter { kernel: 3 };
    let fresh = Arc::new(tiny_defended_model(defense.clone(), 23));
    let images = uniform_images(16, TINY_IMAGE_SIZE, 29);

    // Store and re-load through the shared disk cache — the exact
    // `serve --cache-dir` warm-start path.
    let train = TrainConfig::tiny();
    let seed = 23;
    let cache = DiskVariantCache::open(&dir.0).expect("cache opens");
    let entry = cache
        .store(&fresh, &train, TINY_IMAGE_SIZE, 18, seed)
        .expect("store succeeds");
    let loaded = Arc::new(
        cache
            .load(&defense, &train, TINY_IMAGE_SIZE, 18, seed)
            .expect("load succeeds")
            .expect("entry is a hit"),
    );
    // The same cache file must be servable via `--model-path` too.
    let via_model_path = model_from_file_bytes(&read_file_verified(&entry).expect("readable"))
        .expect("cache entry decodes as a model file");
    assert_eq!(via_model_path.defense(), &defense);

    let reference: Vec<_> = images
        .iter()
        .map(|image| classify_single(&fresh, image).expect("fresh oracle"))
        .collect();
    let service =
        ClassifyService::new(Arc::clone(&loaded), ServeConfig::default()).expect("service starts");
    let client = service.client();
    let served: Vec<_> = images
        .iter()
        .map(|image| client.classify(image.clone()).expect("service answers"))
        .collect();
    service.shutdown().expect("clean shutdown");

    for (i, (expected, got)) in reference.iter().zip(&served).enumerate() {
        assert_eq!(
            bits(expected),
            bits(got),
            "image {i}: cached-model service diverged from the fresh model"
        );
    }
}
