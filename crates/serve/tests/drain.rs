//! Graceful-drain pin over the real TCP path: SIGTERM a running `serve`
//! process while a request is in flight and demand (a) the request is
//! still answered, (b) the process exits 0.
//!
//! The request is held in flight by a large `--window-us` flush window
//! with `--batch-max` far above one, so the batcher is deliberately
//! sitting on the admitted request when the signal lands — the exact
//! moment a deploy's SIGTERM would historically have dropped it.

use std::path::PathBuf;
use std::process::{Child, Command};
use std::time::{Duration, Instant};

use blurnet_serve::protocol::RemoteClient;

/// Scratch directory under `target/` (shared model cache lives here, so
/// repeated test runs skip the startup training).
fn work_root() -> PathBuf {
    let exe = PathBuf::from(env!("CARGO_BIN_EXE_serve"));
    exe.parent()
        .and_then(std::path::Path::parent)
        .expect("binary lives under target/<profile>/")
        .join("drain-test")
}

/// Waits for the `--ready-file` to appear and returns the bound address.
fn wait_ready(path: &PathBuf, child: &mut Child) -> String {
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        if let Ok(addr) = std::fs::read_to_string(path) {
            if !addr.is_empty() {
                return addr;
            }
        }
        if let Some(status) = child.try_wait().expect("try_wait") {
            panic!("serve exited before becoming ready: {status}");
        }
        assert!(Instant::now() < deadline, "serve never became ready");
        std::thread::sleep(Duration::from_millis(50));
    }
}

#[test]
fn sigterm_drains_in_flight_requests_and_exits_zero() {
    let root = work_root();
    std::fs::create_dir_all(&root).expect("work root");
    let ready = root.join("ready-addr");
    let _ = std::fs::remove_file(&ready);

    let mut child = Command::new(env!("CARGO_BIN_EXE_serve"))
        .arg("--addr")
        .arg("127.0.0.1:0")
        .arg("--defense")
        .arg("baseline")
        .arg("--cache-dir")
        .arg(root.join("cache"))
        .arg("--ready-file")
        .arg(&ready)
        // Hold admitted requests in the batcher for up to 300 ms so the
        // signal reliably lands while one is in flight.
        .arg("--batch-max")
        .arg("32")
        .arg("--window-us")
        .arg("300000")
        .arg("--drain-timeout-ms")
        .arg("10000")
        .env("BLURNET_SCALE", "smoke")
        .spawn()
        .expect("spawn serve");

    let addr = wait_ready(&ready, &mut child);
    let mut client = RemoteClient::connect(addr.trim()).expect("connect");
    let elements = client.handshake().elements();

    // Fire the request from a helper thread; it will block until the
    // batcher's window flushes — which happens well after the SIGTERM.
    let handle = std::thread::spawn(move || {
        let image = vec![0.5f32; elements];
        client.classify(&image)
    });

    // Give the request time to be admitted, then signal.
    std::thread::sleep(Duration::from_millis(100));
    let kill = Command::new("kill")
        .arg("-TERM")
        .arg(child.id().to_string())
        .status()
        .expect("send SIGTERM");
    assert!(kill.success(), "kill -TERM failed");

    // The admitted in-flight request must still be answered.
    let response = handle.join().expect("client thread");
    assert!(
        response.is_ok(),
        "in-flight request dropped during drain: {:?}",
        response.err()
    );

    // And the drained process must exit 0, within the drain timeout.
    let deadline = Instant::now() + Duration::from_secs(30);
    let status = loop {
        if let Some(status) = child.try_wait().expect("try_wait") {
            break status;
        }
        assert!(Instant::now() < deadline, "serve did not exit after drain");
        std::thread::sleep(Duration::from_millis(50));
    };
    assert!(
        status.success(),
        "a graceful drain must exit 0, got: {status}"
    );
}
