//! The serving determinism contract: micro-batched responses are
//! bit-identical to single-request execution, at every batch window and
//! worker count, for every deterministic defense.
//!
//! Run under `RAYON_NUM_THREADS=1` and `=4` in CI — the responses must
//! not depend on the engine's intra-batch sharding either.

use std::sync::Arc;
use std::time::Duration;

use blurnet_defenses::DefenseKind;
use blurnet_serve::{classify_single, Classification, ClassifyService, ServeConfig};
use blurnet_tensor::Tensor;
use blurnet_test_support::{tiny_defended_model, uniform_images, TINY_IMAGE_SIZE};

/// Pinned by the ISSUE: batch windows {1, 4, 32} × worker counts {1, 4}.
const MAX_BATCHES: [usize; 3] = [1, 4, 32];
const WORKER_COUNTS: [usize; 2] = [1, 4];

fn bits(c: &Classification) -> (usize, u32, blurnet_serve::DefenseVerdict) {
    (c.label, c.confidence.to_bits(), c.verdict)
}

/// Classifies `images` through a service concurrently (one submitting
/// thread per image, so requests genuinely mix in the batcher) and
/// returns responses in image order.
fn classify_concurrently(service: &ClassifyService, images: &[Tensor]) -> Vec<Classification> {
    let handle = service.client();
    std::thread::scope(|scope| {
        let workers: Vec<_> = images
            .iter()
            .map(|image| {
                let handle = handle.clone();
                let image = image.clone();
                scope.spawn(move || handle.classify(image).expect("service answers"))
            })
            .collect();
        workers
            .into_iter()
            .map(|w| w.join().expect("submitting thread"))
            .collect()
    })
}

#[test]
fn micro_batched_matches_single_request_bitwise() {
    for defense in [
        DefenseKind::Baseline,
        DefenseKind::InputFilter { kernel: 3 },
        DefenseKind::FeatureFilter { kernel: 3 },
    ] {
        let model = Arc::new(tiny_defended_model(defense, 11));
        let images = uniform_images(48, TINY_IMAGE_SIZE, 17);
        let reference: Vec<_> = images
            .iter()
            .map(|image| classify_single(&model, image).expect("reference path"))
            .collect();

        for max_batch in MAX_BATCHES {
            for workers in WORKER_COUNTS {
                let service = ClassifyService::new(
                    Arc::clone(&model),
                    ServeConfig {
                        max_batch,
                        flush_window: Duration::from_micros(200),
                        workers,
                        queue_depth: 64,
                        ..ServeConfig::default()
                    },
                )
                .expect("service starts");
                let batched = classify_concurrently(&service, &images);
                service.shutdown().expect("clean shutdown");

                for (i, (single, many)) in reference.iter().zip(&batched).enumerate() {
                    assert_eq!(
                        bits(single),
                        bits(many),
                        "image {i} diverged at max_batch={max_batch} workers={workers} \
                         defense={}",
                        model.defense().label()
                    );
                }
            }
        }
    }
}

#[test]
fn zero_window_still_answers_every_request() {
    // A zero flush window dispatches the moment the batcher sees a
    // request; coalescing shrinks to whatever is already queued, but
    // responses stay bit-identical and nothing is dropped.
    let model = Arc::new(tiny_defended_model(DefenseKind::Baseline, 3));
    let images = uniform_images(16, TINY_IMAGE_SIZE, 5);
    let reference: Vec<_> = images
        .iter()
        .map(|image| classify_single(&model, image).expect("reference path"))
        .collect();
    let service = ClassifyService::new(
        Arc::clone(&model),
        ServeConfig {
            max_batch: 32,
            flush_window: Duration::ZERO,
            workers: 2,
            queue_depth: 64,
            ..ServeConfig::default()
        },
    )
    .expect("service starts");
    let batched = classify_concurrently(&service, &images);
    service.shutdown().expect("clean shutdown");
    for (single, many) in reference.iter().zip(&batched) {
        assert_eq!(bits(single), bits(many));
    }
}

#[test]
fn repeated_payload_is_stable_across_batches() {
    // The same image sent many times, racing against other traffic, must
    // always produce the same bytes — the service-level restatement of
    // the engine's batch invariance.
    let model = Arc::new(tiny_defended_model(
        DefenseKind::InputFilter { kernel: 3 },
        23,
    ));
    let images = uniform_images(8, TINY_IMAGE_SIZE, 29);
    let service = ClassifyService::new(
        Arc::clone(&model),
        ServeConfig {
            max_batch: 4,
            flush_window: Duration::from_micros(100),
            workers: 2,
            queue_depth: 64,
            ..ServeConfig::default()
        },
    )
    .expect("service starts");
    let probe = &images[0];
    let first = service
        .client()
        .classify(probe.clone())
        .expect("probe classification");
    let repeats: Vec<_> = std::iter::repeat_n(probe, 24)
        .chain(images.iter().cycle().take(24))
        .cloned()
        .collect();
    let answers = classify_concurrently(&service, &repeats);
    service.shutdown().expect("clean shutdown");
    for answer in &answers[..24] {
        assert_eq!(bits(&first), bits(answer));
    }
}

#[test]
fn randomized_smoothing_is_refused() {
    let model = Arc::new(tiny_defended_model(
        DefenseKind::RandomizedSmoothing {
            sigma: 0.1,
            samples: 8,
        },
        1,
    ));
    let err = ClassifyService::new(Arc::clone(&model), ServeConfig::default())
        .expect_err("smoothing cannot be served");
    assert!(
        err.to_string().contains("RNG"),
        "error should explain the RNG problem, got: {err}"
    );
    assert!(classify_single(&model, &uniform_images(1, TINY_IMAGE_SIZE, 2)[0]).is_err());
}

#[test]
fn wrong_shape_is_rejected_at_submit() {
    let model = Arc::new(tiny_defended_model(DefenseKind::Baseline, 4));
    let service =
        ClassifyService::new(Arc::clone(&model), ServeConfig::default()).expect("service starts");
    let client = service.client();
    let bad = Tensor::zeros(&[3, TINY_IMAGE_SIZE, TINY_IMAGE_SIZE + 1]);
    let err = client.submit(bad).expect_err("shape is validated");
    assert!(matches!(err, blurnet_serve::ServeError::BadInput(_)));
    service.shutdown().expect("clean shutdown");
}
