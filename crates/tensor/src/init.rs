use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::Tensor;

/// Weight initialization schemes used by the network layers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Initializer {
    /// Kaiming/He uniform, appropriate before ReLU activations.
    KaimingUniform,
    /// Xavier/Glorot uniform, appropriate for linear outputs.
    XavierUniform,
    /// All zeros (used for biases).
    Zeros,
}

impl Initializer {
    /// Materializes a tensor of the given shape.
    ///
    /// `fan_in` and `fan_out` are the effective fan values of the layer the
    /// weights belong to (for convolutions they include the kernel area).
    pub fn init<R: Rng + ?Sized>(
        self,
        dims: &[usize],
        fan_in: usize,
        fan_out: usize,
        rng: &mut R,
    ) -> Tensor {
        match self {
            Initializer::KaimingUniform => kaiming_uniform(dims, fan_in, rng),
            Initializer::XavierUniform => xavier_uniform(dims, fan_in, fan_out, rng),
            Initializer::Zeros => Tensor::zeros(dims),
        }
    }
}

/// Kaiming/He uniform initialization: `U(-b, b)` with `b = sqrt(6 / fan_in)`.
pub fn kaiming_uniform<R: Rng + ?Sized>(dims: &[usize], fan_in: usize, rng: &mut R) -> Tensor {
    let bound = (6.0 / fan_in.max(1) as f32).sqrt();
    Tensor::rand_uniform(dims, -bound, bound, rng)
}

/// Xavier/Glorot uniform initialization:
/// `U(-b, b)` with `b = sqrt(6 / (fan_in + fan_out))`.
pub fn xavier_uniform<R: Rng + ?Sized>(
    dims: &[usize],
    fan_in: usize,
    fan_out: usize,
    rng: &mut R,
) -> Tensor {
    let bound = (6.0 / (fan_in + fan_out).max(1) as f32).sqrt();
    Tensor::rand_uniform(dims, -bound, bound, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn kaiming_respects_bound() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let t = kaiming_uniform(&[64, 64], 64, &mut rng);
        let bound = (6.0f32 / 64.0).sqrt();
        assert!(t.data().iter().all(|v| v.abs() <= bound));
        // Values should not all be tiny: spread should be a fair share of the bound.
        assert!(t.linf_norm() > bound * 0.5);
    }

    #[test]
    fn xavier_respects_bound() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let t = xavier_uniform(&[32, 16], 16, 32, &mut rng);
        let bound = (6.0f32 / 48.0).sqrt();
        assert!(t.data().iter().all(|v| v.abs() <= bound));
    }

    #[test]
    fn zeros_initializer() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let t = Initializer::Zeros.init(&[4, 4], 4, 4, &mut rng);
        assert!(t.data().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn initializer_enum_dispatch() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let k = Initializer::KaimingUniform.init(&[8, 8], 8, 8, &mut rng);
        let x = Initializer::XavierUniform.init(&[8, 8], 8, 8, &mut rng);
        assert_eq!(k.dims(), &[8, 8]);
        assert_eq!(x.dims(), &[8, 8]);
        assert_ne!(k, x);
    }
}
