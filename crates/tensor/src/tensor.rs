use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::{Result, Shape, TensorError};

/// A dense, row-major `f32` tensor.
///
/// This is the single numeric container used throughout the BlurNet
/// reproduction: images and activation batches are `[N, C, H, W]`,
/// convolution weights are `[F, C, KH, KW]`, dense weights are `[out, in]`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    data: Vec<f32>,
    shape: Shape,
}

impl Tensor {
    /// Creates a tensor from raw data and a shape.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeDataMismatch`] if `data.len()` differs
    /// from the shape volume.
    pub fn from_vec(data: Vec<f32>, dims: &[usize]) -> Result<Self> {
        let shape = Shape::new(dims);
        if data.len() != shape.volume() {
            return Err(TensorError::ShapeDataMismatch {
                data_len: data.len(),
                expected: shape.volume(),
            });
        }
        Ok(Tensor { data, shape })
    }

    /// Creates a tensor filled with zeros.
    pub fn zeros(dims: &[usize]) -> Self {
        let shape = Shape::new(dims);
        Tensor {
            data: vec![0.0; shape.volume()],
            shape,
        }
    }

    /// Creates a tensor filled with ones.
    pub fn ones(dims: &[usize]) -> Self {
        Self::full(dims, 1.0)
    }

    /// Creates a tensor filled with `value`.
    pub fn full(dims: &[usize], value: f32) -> Self {
        let shape = Shape::new(dims);
        Tensor {
            data: vec![value; shape.volume()],
            shape,
        }
    }

    /// Creates a tensor with elements drawn uniformly from `[lo, hi)`.
    pub fn rand_uniform<R: Rng + ?Sized>(dims: &[usize], lo: f32, hi: f32, rng: &mut R) -> Self {
        let shape = Shape::new(dims);
        let data = (0..shape.volume()).map(|_| rng.gen_range(lo..hi)).collect();
        Tensor { data, shape }
    }

    /// Creates a tensor with elements drawn from a normal distribution
    /// `N(mean, std^2)` using a Box-Muller transform.
    pub fn rand_normal<R: Rng + ?Sized>(dims: &[usize], mean: f32, std: f32, rng: &mut R) -> Self {
        let shape = Shape::new(dims);
        let n = shape.volume();
        let mut data = Vec::with_capacity(n);
        while data.len() < n {
            let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
            let u2: f32 = rng.gen_range(0.0..1.0);
            let mag = (-2.0 * u1.ln()).sqrt();
            let z0 = mag * (2.0 * std::f32::consts::PI * u2).cos();
            let z1 = mag * (2.0 * std::f32::consts::PI * u2).sin();
            data.push(mean + std * z0);
            if data.len() < n {
                data.push(mean + std * z1);
            }
        }
        Tensor { data, shape }
    }

    /// The shape of the tensor.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// The dimension extents of the tensor.
    pub fn dims(&self) -> &[usize] {
        self.shape.dims()
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the underlying data, row-major.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying data, row-major.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor and returns its underlying buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Returns a copy reshaped to `dims`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeDataMismatch`] if the volumes differ.
    pub fn reshape(&self, dims: &[usize]) -> Result<Tensor> {
        Tensor::from_vec(self.data.clone(), dims)
    }

    /// Element at a multi-dimensional index.
    ///
    /// # Errors
    ///
    /// Returns an error if the index rank or extents are invalid.
    pub fn get(&self, index: &[usize]) -> Result<f32> {
        Ok(self.data[self.shape.flat_index(index)?])
    }

    /// Sets the element at a multi-dimensional index.
    ///
    /// # Errors
    ///
    /// Returns an error if the index rank or extents are invalid.
    pub fn set(&mut self, index: &[usize], value: f32) -> Result<()> {
        let flat = self.shape.flat_index(index)?;
        self.data[flat] = value;
        Ok(())
    }

    /// Applies `f` elementwise, returning a new tensor.
    pub fn map<F: Fn(f32) -> f32>(&self, f: F) -> Tensor {
        Tensor {
            data: self.data.iter().map(|&v| f(v)).collect(),
            shape: self.shape.clone(),
        }
    }

    /// Applies `f` elementwise in place.
    pub fn map_inplace<F: Fn(f32) -> f32>(&mut self, f: F) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Combines two tensors elementwise with `f`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn zip_map<F: Fn(f32, f32) -> f32>(&self, other: &Tensor, f: F) -> Result<Tensor> {
        self.shape.ensure_same(&other.shape)?;
        let data = self
            .data
            .iter()
            .zip(other.data.iter())
            .map(|(&a, &b)| f(a, b))
            .collect();
        Ok(Tensor {
            data,
            shape: self.shape.clone(),
        })
    }

    /// Elementwise sum.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn add(&self, other: &Tensor) -> Result<Tensor> {
        self.zip_map(other, |a, b| a + b)
    }

    /// Elementwise difference.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn sub(&self, other: &Tensor) -> Result<Tensor> {
        self.zip_map(other, |a, b| a - b)
    }

    /// Elementwise product (Hadamard).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn mul(&self, other: &Tensor) -> Result<Tensor> {
        self.zip_map(other, |a, b| a * b)
    }

    /// Multiplies every element by `s`.
    pub fn scale(&self, s: f32) -> Tensor {
        self.map(|v| v * s)
    }

    /// In-place `self += alpha * other`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn add_scaled(&mut self, other: &Tensor, alpha: f32) -> Result<()> {
        self.shape.ensure_same(&other.shape)?;
        for (a, &b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += alpha * b;
        }
        Ok(())
    }

    /// Clamps every element into `[lo, hi]`.
    pub fn clamp(&self, lo: f32, hi: f32) -> Tensor {
        self.map(|v| v.clamp(lo, hi))
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements; zero for an empty tensor.
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Maximum element.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::EmptyTensor`] for an empty tensor.
    pub fn max(&self) -> Result<f32> {
        self.data
            .iter()
            .copied()
            .fold(None, |acc: Option<f32>, v| {
                Some(acc.map_or(v, |m| m.max(v)))
            })
            .ok_or(TensorError::EmptyTensor)
    }

    /// Minimum element.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::EmptyTensor`] for an empty tensor.
    pub fn min(&self) -> Result<f32> {
        self.data
            .iter()
            .copied()
            .fold(None, |acc: Option<f32>, v| {
                Some(acc.map_or(v, |m| m.min(v)))
            })
            .ok_or(TensorError::EmptyTensor)
    }

    /// Index of the maximum element (first occurrence).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::EmptyTensor`] for an empty tensor.
    pub fn argmax(&self) -> Result<usize> {
        if self.data.is_empty() {
            return Err(TensorError::EmptyTensor);
        }
        let mut best = 0usize;
        for (i, &v) in self.data.iter().enumerate() {
            if v > self.data[best] {
                best = i;
            }
        }
        Ok(best)
    }

    /// Euclidean (L2) norm of the flattened tensor.
    pub fn l2_norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum::<f32>().sqrt()
    }

    /// L1 norm of the flattened tensor.
    pub fn l1_norm(&self) -> f32 {
        self.data.iter().map(|v| v.abs()).sum()
    }

    /// L∞ norm (maximum absolute value) of the flattened tensor.
    pub fn linf_norm(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, v| m.max(v.abs()))
    }

    /// Dot product of two tensors viewed as flat vectors.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn dot(&self, other: &Tensor) -> Result<f32> {
        self.shape.ensure_same(&other.shape)?;
        Ok(self
            .data
            .iter()
            .zip(other.data.iter())
            .map(|(&a, &b)| a * b)
            .sum())
    }

    /// Extracts element `n` of the batch dimension of an `[N, ...]` tensor.
    ///
    /// # Errors
    ///
    /// Returns an error if the tensor has rank 0 or `n` is out of range.
    pub fn batch_item(&self, n: usize) -> Result<Tensor> {
        if self.shape.rank() == 0 {
            return Err(TensorError::RankMismatch {
                expected: 1,
                actual: 0,
            });
        }
        let batch = self.shape.dim(0);
        if n >= batch {
            return Err(TensorError::IndexOutOfBounds {
                index: n,
                len: batch,
            });
        }
        let item_dims: Vec<usize> = self.shape.dims()[1..].to_vec();
        let item_len: usize = item_dims.iter().product();
        let start = n * item_len;
        Tensor::from_vec(self.data[start..start + item_len].to_vec(), &item_dims)
    }

    /// Extracts `count` consecutive batch elements starting at `start` from
    /// an `[N, ...]` tensor, preserving the remaining dimensions.
    ///
    /// This is the zero-logic slicing primitive behind batch sharding: the
    /// data is contiguous per batch element, so the slice is one `memcpy`.
    ///
    /// # Errors
    ///
    /// Returns an error if the tensor has rank 0, `count` is zero, or
    /// `start + count` exceeds the batch dimension.
    pub fn batch_slice(&self, start: usize, count: usize) -> Result<Tensor> {
        if self.shape.rank() == 0 {
            return Err(TensorError::RankMismatch {
                expected: 1,
                actual: 0,
            });
        }
        let batch = self.shape.dim(0);
        if count == 0 || start + count > batch {
            return Err(TensorError::IndexOutOfBounds {
                index: start + count,
                len: batch,
            });
        }
        let mut dims: Vec<usize> = self.shape.dims().to_vec();
        dims[0] = count;
        let item_len: usize = self.shape.dims()[1..].iter().product();
        let lo = start * item_len;
        let hi = (start + count) * item_len;
        Tensor::from_vec(self.data[lo..hi].to_vec(), &dims)
    }

    /// Concatenates tensors along their existing leading batch dimension
    /// (the inverse of [`Tensor::batch_slice`] over a partition).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::EmptyTensor`] for an empty slice and
    /// [`TensorError::ShapeMismatch`] if the non-batch dimensions disagree.
    pub fn concat_batch(parts: &[Tensor]) -> Result<Tensor> {
        let first = parts.first().ok_or(TensorError::EmptyTensor)?;
        if first.shape.rank() == 0 {
            return Err(TensorError::RankMismatch {
                expected: 1,
                actual: 0,
            });
        }
        let mut total = 0usize;
        for part in parts {
            if part.shape.rank() != first.shape.rank()
                || part.shape.dims()[1..] != first.shape.dims()[1..]
            {
                return Err(TensorError::ShapeMismatch {
                    left: part.dims().to_vec(),
                    right: first.dims().to_vec(),
                });
            }
            total += part.shape.dim(0);
        }
        let mut data = Vec::with_capacity(first.len() / first.shape.dim(0).max(1) * total);
        for part in parts {
            data.extend_from_slice(&part.data);
        }
        let mut dims: Vec<usize> = first.dims().to_vec();
        dims[0] = total;
        Tensor::from_vec(data, &dims)
    }

    /// Stacks equally-shaped tensors along a new leading batch dimension.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::EmptyTensor`] for an empty slice and
    /// [`TensorError::ShapeMismatch`] if the items disagree in shape.
    pub fn stack(items: &[Tensor]) -> Result<Tensor> {
        let first = items.first().ok_or(TensorError::EmptyTensor)?;
        let mut data = Vec::with_capacity(first.len() * items.len());
        for item in items {
            first.shape.ensure_same(&item.shape)?;
            data.extend_from_slice(&item.data);
        }
        let mut dims = vec![items.len()];
        dims.extend_from_slice(first.dims());
        Tensor::from_vec(data, &dims)
    }

    /// Extracts channel `c` of a `[C, H, W]` tensor as an `[H, W]` tensor.
    ///
    /// # Errors
    ///
    /// Returns an error if the tensor is not rank 3 or `c` is out of range.
    pub fn channel(&self, c: usize) -> Result<Tensor> {
        if self.shape.rank() != 3 {
            return Err(TensorError::RankMismatch {
                expected: 3,
                actual: self.shape.rank(),
            });
        }
        let (ch, h, w) = (self.shape.dim(0), self.shape.dim(1), self.shape.dim(2));
        if c >= ch {
            return Err(TensorError::IndexOutOfBounds { index: c, len: ch });
        }
        let start = c * h * w;
        Tensor::from_vec(self.data[start..start + h * w].to_vec(), &[h, w])
    }
}

impl std::ops::Add<&Tensor> for &Tensor {
    type Output = Tensor;

    /// Elementwise addition.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ; use [`Tensor::add`] for a fallible
    /// variant.
    fn add(self, rhs: &Tensor) -> Tensor {
        Tensor::add(self, rhs).expect("operator + requires identical shapes")
    }
}

impl std::ops::Sub<&Tensor> for &Tensor {
    type Output = Tensor;

    /// Elementwise subtraction.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ; use [`Tensor::sub`] for a fallible
    /// variant.
    fn sub(self, rhs: &Tensor) -> Tensor {
        Tensor::sub(self, rhs).expect("operator - requires identical shapes")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn from_vec_checks_volume() {
        assert!(Tensor::from_vec(vec![1.0; 6], &[2, 3]).is_ok());
        assert!(matches!(
            Tensor::from_vec(vec![1.0; 5], &[2, 3]),
            Err(TensorError::ShapeDataMismatch { .. })
        ));
    }

    #[test]
    fn elementwise_ops() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]).unwrap();
        let b = Tensor::from_vec(vec![4.0, 5.0, 6.0], &[3]).unwrap();
        assert_eq!(a.add(&b).unwrap().data(), &[5.0, 7.0, 9.0]);
        assert_eq!(b.sub(&a).unwrap().data(), &[3.0, 3.0, 3.0]);
        assert_eq!(a.mul(&b).unwrap().data(), &[4.0, 10.0, 18.0]);
        assert_eq!(a.scale(2.0).data(), &[2.0, 4.0, 6.0]);
        assert!((a.dot(&b).unwrap() - 32.0).abs() < 1e-6);
    }

    #[test]
    fn reductions() {
        let t = Tensor::from_vec(vec![-1.0, 2.0, -3.0, 4.0], &[2, 2]).unwrap();
        assert_eq!(t.sum(), 2.0);
        assert_eq!(t.mean(), 0.5);
        assert_eq!(t.max().unwrap(), 4.0);
        assert_eq!(t.min().unwrap(), -3.0);
        assert_eq!(t.argmax().unwrap(), 3);
        assert_eq!(t.l1_norm(), 10.0);
        assert!((t.l2_norm() - 30.0f32.sqrt()).abs() < 1e-6);
        assert_eq!(t.linf_norm(), 4.0);
    }

    #[test]
    fn add_scaled_accumulates() {
        let mut a = Tensor::zeros(&[4]);
        let b = Tensor::ones(&[4]);
        a.add_scaled(&b, 0.5).unwrap();
        a.add_scaled(&b, 0.25).unwrap();
        assert_eq!(a.data(), &[0.75; 4]);
    }

    #[test]
    fn clamp_bounds_values() {
        let t = Tensor::from_vec(vec![-2.0, 0.5, 3.0], &[3]).unwrap();
        assert_eq!(t.clamp(0.0, 1.0).data(), &[0.0, 0.5, 1.0]);
    }

    #[test]
    fn batch_item_and_stack_roundtrip() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
        let b = Tensor::from_vec(vec![5.0, 6.0, 7.0, 8.0], &[2, 2]).unwrap();
        let stacked = Tensor::stack(&[a.clone(), b.clone()]).unwrap();
        assert_eq!(stacked.dims(), &[2, 2, 2]);
        assert_eq!(stacked.batch_item(0).unwrap(), a);
        assert_eq!(stacked.batch_item(1).unwrap(), b);
        assert!(stacked.batch_item(2).is_err());
    }

    #[test]
    fn channel_extraction() {
        let t = Tensor::from_vec((0..12).map(|v| v as f32).collect(), &[3, 2, 2]).unwrap();
        let c1 = t.channel(1).unwrap();
        assert_eq!(c1.dims(), &[2, 2]);
        assert_eq!(c1.data(), &[4.0, 5.0, 6.0, 7.0]);
        assert!(t.channel(3).is_err());
    }

    #[test]
    fn get_set_multi_index() {
        let mut t = Tensor::zeros(&[2, 3]);
        t.set(&[1, 2], 9.0).unwrap();
        assert_eq!(t.get(&[1, 2]).unwrap(), 9.0);
        assert_eq!(t.get(&[0, 0]).unwrap(), 0.0);
        assert!(t.set(&[2, 0], 1.0).is_err());
    }

    #[test]
    fn random_constructors_are_deterministic_per_seed() {
        let mut r1 = ChaCha8Rng::seed_from_u64(7);
        let mut r2 = ChaCha8Rng::seed_from_u64(7);
        let a = Tensor::rand_uniform(&[16], -1.0, 1.0, &mut r1);
        let b = Tensor::rand_uniform(&[16], -1.0, 1.0, &mut r2);
        assert_eq!(a, b);
        assert!(a.data().iter().all(|v| (-1.0..1.0).contains(v)));

        let n = Tensor::rand_normal(&[1001], 0.0, 1.0, &mut r1);
        assert_eq!(n.len(), 1001);
        assert!(n.mean().abs() < 0.2);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec((0..6).map(|v| v as f32).collect(), &[2, 3]).unwrap();
        let r = t.reshape(&[3, 2]).unwrap();
        assert_eq!(r.dims(), &[3, 2]);
        assert_eq!(r.data(), t.data());
        assert!(t.reshape(&[4, 2]).is_err());
    }

    #[test]
    fn batch_slice_extracts_contiguous_ranges() {
        let t = Tensor::from_vec((0..24).map(|v| v as f32).collect(), &[4, 2, 3]).unwrap();
        let mid = t.batch_slice(1, 2).unwrap();
        assert_eq!(mid.dims(), &[2, 2, 3]);
        assert_eq!(mid.data(), &t.data()[6..18]);
        // A width-1 slice agrees with batch_item modulo the kept batch axis.
        let one = t.batch_slice(3, 1).unwrap();
        assert_eq!(one.dims(), &[1, 2, 3]);
        assert_eq!(one.data(), t.batch_item(3).unwrap().data());
        assert!(t.batch_slice(3, 2).is_err());
        assert!(t.batch_slice(0, 0).is_err());
    }

    #[test]
    fn concat_batch_inverts_a_slice_partition() {
        let t = Tensor::from_vec((0..30).map(|v| v as f32).collect(), &[5, 3, 2]).unwrap();
        let parts = [
            t.batch_slice(0, 2).unwrap(),
            t.batch_slice(2, 1).unwrap(),
            t.batch_slice(3, 2).unwrap(),
        ];
        let rebuilt = Tensor::concat_batch(&parts).unwrap();
        assert_eq!(rebuilt, t);
        // Mismatched trailing dims are rejected.
        let bad = [Tensor::zeros(&[1, 3, 2]), Tensor::zeros(&[1, 2, 3])];
        assert!(Tensor::concat_batch(&bad).is_err());
        assert!(Tensor::concat_batch(&[]).is_err());
    }
}
