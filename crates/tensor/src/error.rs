use std::fmt;

/// Errors produced by tensor operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// The number of data elements does not match the product of the shape.
    ShapeDataMismatch {
        /// Number of elements provided.
        data_len: usize,
        /// Number of elements implied by the shape.
        expected: usize,
    },
    /// Two tensors that must have identical shapes do not.
    ShapeMismatch {
        /// Shape of the left operand.
        left: Vec<usize>,
        /// Shape of the right operand.
        right: Vec<usize>,
    },
    /// A tensor did not have the expected rank.
    RankMismatch {
        /// Expected rank.
        expected: usize,
        /// Actual rank.
        actual: usize,
    },
    /// Inner dimensions of a matrix product disagree.
    MatmulDimMismatch {
        /// Columns of the left matrix.
        left_cols: usize,
        /// Rows of the right matrix.
        right_rows: usize,
    },
    /// A convolution / pooling configuration is invalid for the given input.
    InvalidSpec(String),
    /// An index was out of bounds.
    IndexOutOfBounds {
        /// Offending flat index.
        index: usize,
        /// Number of elements in the tensor.
        len: usize,
    },
    /// An empty tensor was passed to a reduction that requires data.
    EmptyTensor,
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::ShapeDataMismatch { data_len, expected } => write!(
                f,
                "data length {data_len} does not match shape volume {expected}"
            ),
            TensorError::ShapeMismatch { left, right } => {
                write!(f, "shape mismatch: {left:?} vs {right:?}")
            }
            TensorError::RankMismatch { expected, actual } => {
                write!(f, "expected rank {expected}, got rank {actual}")
            }
            TensorError::MatmulDimMismatch {
                left_cols,
                right_rows,
            } => write!(
                f,
                "matmul inner dimensions disagree: {left_cols} vs {right_rows}"
            ),
            TensorError::InvalidSpec(msg) => write!(f, "invalid operation spec: {msg}"),
            TensorError::IndexOutOfBounds { index, len } => {
                write!(f, "index {index} out of bounds for tensor of length {len}")
            }
            TensorError::EmptyTensor => write!(f, "operation requires a non-empty tensor"),
        }
    }
}

impl std::error::Error for TensorError {}
