use std::fmt;

/// Errors produced by tensor operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// The number of data elements does not match the product of the shape.
    ShapeDataMismatch {
        /// Number of elements provided.
        data_len: usize,
        /// Number of elements implied by the shape.
        expected: usize,
    },
    /// Two tensors that must have identical shapes do not.
    ShapeMismatch {
        /// Shape of the left operand.
        left: Vec<usize>,
        /// Shape of the right operand.
        right: Vec<usize>,
    },
    /// A tensor did not have the expected rank.
    RankMismatch {
        /// Expected rank.
        expected: usize,
        /// Actual rank.
        actual: usize,
    },
    /// Inner dimensions of a matrix product disagree.
    MatmulDimMismatch {
        /// Columns of the left matrix.
        left_cols: usize,
        /// Rows of the right matrix.
        right_rows: usize,
    },
    /// A convolution / pooling configuration is invalid for the given input.
    InvalidSpec(String),
    /// An index was out of bounds.
    IndexOutOfBounds {
        /// Offending flat index.
        index: usize,
        /// Number of elements in the tensor.
        len: usize,
    },
    /// An empty tensor was passed to a reduction that requires data.
    EmptyTensor,
    /// A persisted record carried the wrong magic bytes (e.g. a model file
    /// handed to the tensor reader, or plain garbage).
    WrongMagic {
        /// The four bytes found at the record head.
        found: [u8; 4],
        /// The magic the reader expected.
        expected: [u8; 4],
    },
    /// A persisted record was written by a newer format version than this
    /// build can read.
    UnsupportedVersion {
        /// Version stamped in the record.
        found: u16,
        /// Newest version this reader supports.
        supported: u16,
    },
    /// A persisted record carried an element type this build cannot decode.
    UnsupportedDtype {
        /// The dtype tag found in the record.
        found: u8,
    },
    /// A persisted record ended before its declared contents.
    Truncated {
        /// Bytes the reader needed next.
        needed: usize,
        /// Bytes actually remaining.
        available: usize,
    },
    /// A persisted record was followed by bytes it does not account for.
    TrailingBytes {
        /// Number of unconsumed bytes.
        extra: usize,
    },
    /// A persisted file failed checksum validation (bit rot, a torn write,
    /// or deliberate corruption).
    ChecksumMismatch {
        /// Checksum stored in the file trailer.
        stored: u64,
        /// Checksum recomputed over the payload.
        computed: u64,
    },
    /// An I/O operation on a persisted file failed (message retains the
    /// `std::io::Error` text; the error itself is kept `Clone + Eq`).
    Io(String),
    /// A shape's element count (or a derived workspace size) overflows
    /// `usize`. Raised by size arithmetic on caller-supplied dimensions —
    /// e.g. the `input_dims` handed to an input-gradient entry point —
    /// before any allocation is attempted.
    SizeOverflow {
        /// The dimension extents whose product overflowed.
        dims: Vec<usize>,
    },
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::ShapeDataMismatch { data_len, expected } => write!(
                f,
                "data length {data_len} does not match shape volume {expected}"
            ),
            TensorError::ShapeMismatch { left, right } => {
                write!(f, "shape mismatch: {left:?} vs {right:?}")
            }
            TensorError::RankMismatch { expected, actual } => {
                write!(f, "expected rank {expected}, got rank {actual}")
            }
            TensorError::MatmulDimMismatch {
                left_cols,
                right_rows,
            } => write!(
                f,
                "matmul inner dimensions disagree: {left_cols} vs {right_rows}"
            ),
            TensorError::InvalidSpec(msg) => write!(f, "invalid operation spec: {msg}"),
            TensorError::IndexOutOfBounds { index, len } => {
                write!(f, "index {index} out of bounds for tensor of length {len}")
            }
            TensorError::EmptyTensor => write!(f, "operation requires a non-empty tensor"),
            TensorError::WrongMagic { found, expected } => write!(
                f,
                "wrong magic bytes: found {found:?}, expected {expected:?}"
            ),
            TensorError::UnsupportedVersion { found, supported } => write!(
                f,
                "format version {found} is newer than the supported version {supported}"
            ),
            TensorError::UnsupportedDtype { found } => {
                write!(f, "unsupported element dtype tag {found}")
            }
            TensorError::Truncated { needed, available } => write!(
                f,
                "record truncated: needed {needed} more bytes, only {available} remain"
            ),
            TensorError::TrailingBytes { extra } => {
                write!(f, "record followed by {extra} unaccounted bytes")
            }
            TensorError::ChecksumMismatch { stored, computed } => write!(
                f,
                "checksum mismatch: stored {stored:#018x}, computed {computed:#018x}"
            ),
            TensorError::Io(msg) => write!(f, "persistence I/O error: {msg}"),
            TensorError::SizeOverflow { dims } => {
                write!(f, "element count of {dims:?} overflows usize")
            }
        }
    }
}

impl std::error::Error for TensorError {}
