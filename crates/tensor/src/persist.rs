//! Versioned binary persistence: the tensor record format and the
//! checksummed file container every persisted artifact in the workspace
//! shares.
//!
//! # Tensor record layout (`BNTR`, version 1)
//!
//! ```text
//! magic      4 bytes   b"BNTR"
//! version    u16 LE    format version (currently 1)
//! dtype      u8        element type tag (1 = f32)
//! rank       u8        number of dimensions
//! dims       rank × u64 LE
//! strides    rank × u64 LE   element strides per dimension
//! len        u64 LE    number of payload elements
//! payload    len × f32 LE
//! ```
//!
//! The writer always emits contiguous row-major data (our [`Tensor`] is
//! dense row-major), but the **reader accepts arbitrary positive strides**
//! and gathers the payload into a contiguous tensor — the same
//! data + shape + strides triple `kornia-rs` serializes, so records
//! produced by foreign layouts (transposed views, padded rows) round-trip
//! into the canonical layout instead of being rejected. Aliasing layouts
//! — a zero stride, or a logical volume exceeding the payload's element
//! count — are rejected as [`TensorError::InvalidSpec`], so a small
//! crafted record can never declare (and force allocation of) a huge
//! logical tensor.
//!
//! # File container (`BNPF`, version 1)
//!
//! ```text
//! magic      4 bytes   b"BNPF"
//! version    u16 LE
//! len        u64 LE    payload byte count
//! payload    len bytes (an inner record: model, artifact, …)
//! checksum   u64 LE    FNV-1a over magic..payload
//! ```
//!
//! [`write_file_atomic`] writes the container to a temporary sibling and
//! `rename`s it into place, so readers never observe a torn file;
//! [`read_file_verified`] validates magic, version, length and checksum
//! before handing the payload back. Every failure mode is a typed
//! [`TensorError`]: [`TensorError::WrongMagic`],
//! [`TensorError::UnsupportedVersion`], [`TensorError::Truncated`],
//! [`TensorError::ChecksumMismatch`], [`TensorError::Io`].

use std::path::Path;

use crate::{Result, Shape, Tensor, TensorError};

/// Magic bytes opening every serialized tensor record.
pub const TENSOR_MAGIC: [u8; 4] = *b"BNTR";
/// Newest tensor-record format version this build reads and writes.
pub const TENSOR_VERSION: u16 = 1;
/// Element-type tag for little-endian IEEE-754 `f32`.
pub const DTYPE_F32: u8 = 1;

/// Magic bytes opening the checksummed file container.
pub const FILE_MAGIC: [u8; 4] = *b"BNPF";
/// Newest file-container version this build reads and writes.
pub const FILE_VERSION: u16 = 1;

/// FNV-1a over a byte slice — the checksum the file container stores and
/// the hash persisted cache keys are derived from.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Bounds-checked little-endian cursor over a byte slice; every overrun is
/// a typed [`TensorError::Truncated`].
#[derive(Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// A reader over `buf`, positioned at its start.
    pub fn new(buf: &'a [u8]) -> Self {
        ByteReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Whether every byte has been consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// Consumes the next `n` bytes.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::Truncated`] if fewer than `n` bytes remain.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(TensorError::Truncated {
                needed: n,
                available: self.remaining(),
            });
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Consumes one byte.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::Truncated`] at end of input.
    pub fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    /// Consumes a little-endian `u16`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::Truncated`] if fewer than two bytes remain.
    pub fn u16_le(&mut self) -> Result<u16> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    /// Consumes a little-endian `u64`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::Truncated`] if fewer than eight bytes remain.
    pub fn u64_le(&mut self) -> Result<u64> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes(b.try_into().expect("eight bytes")))
    }

    /// Consumes a little-endian `u64` and narrows it to `usize`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::Truncated`] on overrun and
    /// [`TensorError::InvalidSpec`] if the value does not fit a `usize`.
    pub fn usize_le(&mut self) -> Result<usize> {
        let v = self.u64_le()?;
        usize::try_from(v)
            .map_err(|_| TensorError::InvalidSpec(format!("persisted size {v} overflows usize")))
    }

    /// Consumes `magic.len()` bytes and compares them against `magic`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::WrongMagic`] on mismatch and
    /// [`TensorError::Truncated`] on overrun.
    pub fn expect_magic(&mut self, magic: [u8; 4]) -> Result<()> {
        let found = self.take(4)?;
        if found != magic {
            return Err(TensorError::WrongMagic {
                found: found.try_into().expect("four bytes"),
                expected: magic,
            });
        }
        Ok(())
    }

    /// Consumes a little-endian `u16` version stamp and rejects versions
    /// newer than `supported`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::UnsupportedVersion`] for a future version and
    /// [`TensorError::Truncated`] on overrun.
    pub fn expect_version(&mut self, supported: u16) -> Result<u16> {
        let found = self.u16_le()?;
        if found > supported {
            return Err(TensorError::UnsupportedVersion { found, supported });
        }
        Ok(found)
    }

    /// Errors with [`TensorError::TrailingBytes`] unless every byte has
    /// been consumed — the guard standalone `from_bytes` readers end with.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::TrailingBytes`] if input remains.
    pub fn finish(&self) -> Result<()> {
        if !self.is_empty() {
            return Err(TensorError::TrailingBytes {
                extra: self.remaining(),
            });
        }
        Ok(())
    }
}

/// Appends `value` as a little-endian `u64`.
pub fn put_u64(buf: &mut Vec<u8>, value: u64) {
    buf.extend_from_slice(&value.to_le_bytes());
}

/// Appends a tensor record (contiguous row-major payload) to `buf`.
pub fn write_tensor(buf: &mut Vec<u8>, tensor: &Tensor) {
    let dims = tensor.dims();
    let strides = tensor.shape().strides();
    buf.extend_from_slice(&TENSOR_MAGIC);
    buf.extend_from_slice(&TENSOR_VERSION.to_le_bytes());
    buf.push(DTYPE_F32);
    buf.push(dims.len() as u8);
    for &d in dims {
        put_u64(buf, d as u64);
    }
    for &s in &strides {
        put_u64(buf, s as u64);
    }
    let data = tensor.data();
    put_u64(buf, data.len() as u64);
    buf.reserve(data.len() * 4);
    for v in data {
        buf.extend_from_slice(&v.to_le_bytes());
    }
}

/// Appends a tensor record with an **explicit** (possibly non-row-major)
/// stride layout: element `(i₀, …, iₖ)` of the logical tensor lives at
/// payload position `Σ iⱼ·stridesⱼ`. This is the producer side of the
/// foreign-layout records [`read_tensor`] gathers; the workspace itself
/// always writes row-major via [`write_tensor`].
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] when `dims` and `strides`
/// disagree in length and [`TensorError::Truncated`] when `payload` is too
/// short to cover the strided extent.
pub fn write_tensor_strided(
    buf: &mut Vec<u8>,
    payload: &[f32],
    dims: &[usize],
    strides: &[usize],
) -> Result<()> {
    if dims.len() != strides.len() {
        return Err(TensorError::RankMismatch {
            expected: dims.len(),
            actual: strides.len(),
        });
    }
    let needed = strided_extent(dims, strides)?;
    if payload.len() < needed {
        return Err(TensorError::Truncated {
            needed: needed * 4,
            available: payload.len() * 4,
        });
    }
    buf.extend_from_slice(&TENSOR_MAGIC);
    buf.extend_from_slice(&TENSOR_VERSION.to_le_bytes());
    buf.push(DTYPE_F32);
    buf.push(dims.len() as u8);
    for &d in dims {
        put_u64(buf, d as u64);
    }
    for &s in strides {
        put_u64(buf, s as u64);
    }
    put_u64(buf, payload.len() as u64);
    buf.reserve(payload.len() * 4);
    for v in payload {
        buf.extend_from_slice(&v.to_le_bytes());
    }
    Ok(())
}

/// Payload elements a `(dims, strides)` layout must provide: zero for an
/// empty tensor, otherwise one past the largest reachable flat offset.
/// Zero strides on a non-degenerate dimension are rejected — they alias
/// every index of that dimension onto one payload element, which lets a
/// tiny payload declare an arbitrarily large logical volume.
fn strided_extent(dims: &[usize], strides: &[usize]) -> Result<usize> {
    if let Some((d, _)) = dims.iter().zip(strides).find(|&(&d, &s)| s == 0 && d > 1) {
        return Err(TensorError::InvalidSpec(format!(
            "zero stride for dimension of size {d} (aliasing layout)"
        )));
    }
    if dims.contains(&0) {
        return Ok(0);
    }
    let mut last = 0usize;
    for (&d, &s) in dims.iter().zip(strides) {
        let span = (d - 1)
            .checked_mul(s)
            .and_then(|v| v.checked_add(last))
            .ok_or_else(|| {
                TensorError::InvalidSpec(format!(
                    "strided extent overflows usize for dims {dims:?} strides {strides:?}"
                ))
            })?;
        last = span;
    }
    last.checked_add(1)
        .ok_or_else(|| TensorError::InvalidSpec("strided extent overflows usize".to_string()))
}

/// Reads one tensor record from `reader`, gathering any stride layout into
/// a contiguous row-major [`Tensor`].
///
/// # Errors
///
/// Returns the typed persist errors ([`TensorError::WrongMagic`],
/// [`TensorError::UnsupportedVersion`], [`TensorError::UnsupportedDtype`],
/// [`TensorError::Truncated`]) plus [`TensorError::InvalidSpec`] for
/// layouts whose extents overflow.
pub fn read_tensor(reader: &mut ByteReader<'_>) -> Result<Tensor> {
    reader.expect_magic(TENSOR_MAGIC)?;
    reader.expect_version(TENSOR_VERSION)?;
    let dtype = reader.u8()?;
    if dtype != DTYPE_F32 {
        return Err(TensorError::UnsupportedDtype { found: dtype });
    }
    let rank = reader.u8()? as usize;
    let mut dims = Vec::with_capacity(rank);
    for _ in 0..rank {
        dims.push(reader.usize_le()?);
    }
    let mut strides = Vec::with_capacity(rank);
    for _ in 0..rank {
        strides.push(reader.usize_le()?);
    }
    let len = reader.usize_le()?;
    let payload_bytes = reader.take(len.checked_mul(4).ok_or_else(|| {
        TensorError::InvalidSpec(format!("payload length {len} overflows usize"))
    })?)?;
    let needed = strided_extent(&dims, &strides)?;
    if len < needed {
        return Err(TensorError::Truncated {
            needed: needed * 4,
            available: len * 4,
        });
    }
    // An injective layout reaches at least `volume` distinct payload
    // positions, so a logical volume beyond the payload's element count
    // necessarily aliases — reject it before sizing the gather buffer by
    // it (overflow included: `len` itself is bounded by the input bytes).
    let volume = dims
        .iter()
        .try_fold(1usize, |acc, &d| acc.checked_mul(d))
        .filter(|&v| v <= len)
        .ok_or_else(|| {
            TensorError::InvalidSpec(format!(
                "layout {dims:?} declares more elements than the {len}-element payload holds"
            ))
        })?;
    let shape = Shape::new(&dims);
    let row_major = shape.strides();
    let decode = |i: usize| {
        let b = &payload_bytes[i * 4..i * 4 + 4];
        f32::from_le_bytes(b.try_into().expect("four bytes"))
    };
    let data = if strides == row_major && len == volume {
        // Contiguous fast path: one straight decode pass.
        (0..volume).map(decode).collect()
    } else {
        // Gather: walk the logical index space in row-major order and pick
        // each element from its strided payload position.
        let mut out = Vec::with_capacity(volume);
        let mut index = vec![0usize; rank];
        for _ in 0..volume {
            let offset: usize = index.iter().zip(&strides).map(|(&i, &s)| i * s).sum();
            out.push(decode(offset));
            for axis in (0..rank).rev() {
                index[axis] += 1;
                if index[axis] < dims[axis] {
                    break;
                }
                index[axis] = 0;
            }
        }
        out
    };
    Tensor::from_vec(data, &dims)
}

/// Serializes one tensor as a standalone record.
pub fn tensor_to_bytes(tensor: &Tensor) -> Vec<u8> {
    let mut buf = Vec::new();
    write_tensor(&mut buf, tensor);
    buf
}

/// Deserializes a standalone tensor record, rejecting trailing bytes.
///
/// # Errors
///
/// Returns the typed persist errors (see [`read_tensor`]) plus
/// [`TensorError::TrailingBytes`] when the record does not account for the
/// whole input.
pub fn tensor_from_bytes(bytes: &[u8]) -> Result<Tensor> {
    let mut reader = ByteReader::new(bytes);
    let tensor = read_tensor(&mut reader)?;
    reader.finish()?;
    Ok(tensor)
}

/// Wraps `payload` in the checksummed file container.
pub fn frame(payload: &[u8]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(payload.len() + 22);
    buf.extend_from_slice(&FILE_MAGIC);
    buf.extend_from_slice(&FILE_VERSION.to_le_bytes());
    put_u64(&mut buf, payload.len() as u64);
    buf.extend_from_slice(payload);
    let checksum = fnv1a(&buf);
    put_u64(&mut buf, checksum);
    buf
}

/// Validates a file container and returns its payload slice.
///
/// # Errors
///
/// Returns [`TensorError::WrongMagic`], [`TensorError::UnsupportedVersion`],
/// [`TensorError::Truncated`], [`TensorError::TrailingBytes`] or
/// [`TensorError::ChecksumMismatch`] for every way the container can be
/// malformed.
pub fn unframe(bytes: &[u8]) -> Result<&[u8]> {
    let mut reader = ByteReader::new(bytes);
    reader.expect_magic(FILE_MAGIC)?;
    reader.expect_version(FILE_VERSION)?;
    let len = reader.usize_le()?;
    let payload = reader.take(len)?;
    let stored = reader.u64_le()?;
    reader.finish()?;
    let computed = fnv1a(&bytes[..bytes.len() - 8]);
    if stored != computed {
        return Err(TensorError::ChecksumMismatch { stored, computed });
    }
    Ok(payload)
}

/// Wraps one append-only log record: `magic · version · kind · len ·
/// payload · checksum`, the per-record analogue of [`frame`] for files
/// that grow by appending instead of being rewritten whole. The checksum
/// is FNV-1a over everything before it, so each record is independently
/// verifiable — a torn or bit-rotted tail invalidates only itself.
pub fn frame_record(magic: [u8; 4], version: u16, kind: u8, payload: &[u8]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(payload.len() + 23);
    buf.extend_from_slice(&magic);
    buf.extend_from_slice(&version.to_le_bytes());
    buf.push(kind);
    put_u64(&mut buf, payload.len() as u64);
    buf.extend_from_slice(payload);
    let checksum = fnv1a(&buf);
    put_u64(&mut buf, checksum);
    buf
}

/// Reads one [`frame_record`] record off the front of `bytes`, returning
/// `(kind, payload, consumed byte count)` so a reader can walk a log by
/// advancing `consumed` bytes per record.
///
/// # Errors
///
/// Returns [`TensorError::WrongMagic`], [`TensorError::UnsupportedVersion`],
/// [`TensorError::Truncated`] or [`TensorError::ChecksumMismatch`] for
/// every way the record can be malformed — a torn-tail-tolerant caller
/// treats any of these at the tail as end-of-log.
pub fn read_record(bytes: &[u8], magic: [u8; 4], supported: u16) -> Result<(u8, &[u8], usize)> {
    let mut reader = ByteReader::new(bytes);
    reader.expect_magic(magic)?;
    reader.expect_version(supported)?;
    let kind = reader.u8()?;
    let len = reader.usize_le()?;
    let payload = reader.take(len)?;
    let stored = reader.u64_le()?;
    let body_end = 4 + 2 + 1 + 8 + len;
    let computed = fnv1a(&bytes[..body_end]);
    if stored != computed {
        return Err(TensorError::ChecksumMismatch { stored, computed });
    }
    Ok((kind, payload, body_end + 8))
}

/// The infix every temporary sibling of an atomic write carries:
/// `<file name>.tmp.<pid>`. Appended to the full file name (never via
/// `with_extension`, which would replace the real extension and collide
/// two targets sharing a stem).
const TMP_INFIX: &str = ".tmp.";

/// Removes temporary siblings a crashed earlier write of `path` left
/// behind (`<name>.tmp.<any pid>`). Best-effort: cleanup never fails the
/// write that triggered it.
fn remove_stale_tmp(path: &Path) {
    let (Some(dir), Some(name)) = (path.parent(), path.file_name()) else {
        return;
    };
    let prefix = format!("{}{TMP_INFIX}", name.to_string_lossy());
    let Ok(entries) = std::fs::read_dir(if dir.as_os_str().is_empty() {
        Path::new(".")
    } else {
        dir
    }) else {
        return;
    };
    for entry in entries.flatten() {
        let candidate = entry.file_name();
        if candidate.to_string_lossy().starts_with(&prefix) {
            let _ = std::fs::remove_file(entry.path());
        }
    }
}

/// Flushes the directory entry for `path` to disk, so the rename that
/// just placed it is durable — without this, a power loss after the
/// rename can resurrect the old file (or no file). Best-effort on
/// filesystems whose directories refuse `sync_all`.
fn sync_parent_dir(path: &Path) {
    let dir = match path.parent() {
        Some(d) if !d.as_os_str().is_empty() => d,
        _ => Path::new("."),
    };
    if let Ok(handle) = std::fs::File::open(dir) {
        let _ = handle.sync_all();
    }
}

/// Writes `payload` to `path` inside the checksummed container,
/// atomically **and durably**: the bytes land in a temporary sibling
/// first, are fsynced, and only then `rename`d into place, followed by an
/// fsync of the parent directory — so a concurrent reader sees either the
/// old file or the complete new one (never a torn write), and a
/// power-loss-style crash cannot lose the rename itself. Temporary
/// siblings a crashed earlier write left behind are cleaned up before
/// writing.
///
/// # Errors
///
/// Returns [`TensorError::Io`] for filesystem failures.
pub fn write_file_atomic(path: &Path, payload: &[u8]) -> Result<()> {
    use std::io::Write;

    let framed = frame(payload);
    remove_stale_tmp(path);
    let mut name = path
        .file_name()
        .ok_or_else(|| TensorError::Io(format!("{} has no file name", path.display())))?
        .to_os_string();
    name.push(format!("{TMP_INFIX}{}", std::process::id()));
    let tmp = path.with_file_name(name);
    let write_synced = |bytes: &[u8]| -> std::io::Result<()> {
        let mut file = std::fs::File::create(&tmp)?;
        file.write_all(bytes)?;
        // The crash-durability half of the contract: the payload must be
        // on disk before the rename publishes it.
        file.sync_all()
    };
    write_synced(&framed).map_err(|e| {
        let _ = std::fs::remove_file(&tmp);
        TensorError::Io(format!("writing {}: {e}", tmp.display()))
    })?;
    std::fs::rename(&tmp, path).map_err(|e| {
        let _ = std::fs::remove_file(&tmp);
        TensorError::Io(format!("renaming into {}: {e}", path.display()))
    })?;
    sync_parent_dir(path);
    Ok(())
}

/// Reads `path` and validates the file container, returning the payload.
///
/// # Errors
///
/// Returns [`TensorError::Io`] for filesystem failures plus every
/// [`unframe`] validation error.
pub fn read_file_verified(path: &Path) -> Result<Vec<u8>> {
    let bytes = std::fs::read(path)
        .map_err(|e| TensorError::Io(format!("reading {}: {e}", path.display())))?;
    Ok(unframe(&bytes)?.to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tensor(dims: &[usize]) -> Tensor {
        let volume: usize = dims.iter().product();
        Tensor::from_vec((0..volume).map(|v| v as f32 * 0.25 - 3.0).collect(), dims).unwrap()
    }

    #[test]
    fn roundtrip_is_bit_identical() {
        for dims in [vec![4], vec![2, 3], vec![2, 3, 4, 5]] {
            let t = tensor(&dims);
            let restored = tensor_from_bytes(&tensor_to_bytes(&t)).unwrap();
            assert_eq!(restored.dims(), t.dims());
            let same_bits = restored
                .data()
                .iter()
                .zip(t.data())
                .all(|(a, b)| a.to_bits() == b.to_bits());
            assert!(same_bits);
        }
    }

    #[test]
    fn strided_records_gather_into_row_major() {
        // A transposed 2×3 layout: logical [2, 3] stored column-major.
        let payload = [1.0f32, 4.0, 2.0, 5.0, 3.0, 6.0];
        let mut buf = Vec::new();
        write_tensor_strided(&mut buf, &payload, &[2, 3], &[1, 2]).unwrap();
        let t = tensor_from_bytes(&buf).unwrap();
        assert_eq!(t.dims(), &[2, 3]);
        assert_eq!(t.data(), &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
    }

    /// Encodes a raw record with the given layout fields, bypassing the
    /// writer's validation — the attacker-controlled shape of input.
    fn raw_record(dims: &[u64], strides: &[u64], payload: &[f32]) -> Vec<u8> {
        let mut buf = Vec::new();
        buf.extend_from_slice(&TENSOR_MAGIC);
        buf.extend_from_slice(&TENSOR_VERSION.to_le_bytes());
        buf.push(DTYPE_F32);
        buf.push(dims.len() as u8);
        for &d in dims {
            put_u64(&mut buf, d);
        }
        for &s in strides {
            put_u64(&mut buf, s);
        }
        put_u64(&mut buf, payload.len() as u64);
        for v in payload {
            buf.extend_from_slice(&v.to_le_bytes());
        }
        buf
    }

    #[test]
    fn aliasing_layouts_are_rejected() {
        // A zero stride would repeat one payload element across a whole
        // dimension — a 4-byte payload claiming a size-1000000 axis.
        let zero = raw_record(&[1_000_000], &[0], &[1.0]);
        assert!(matches!(
            tensor_from_bytes(&zero),
            Err(TensorError::InvalidSpec(_))
        ));
        // The writer refuses to produce such a record in the first place.
        let mut buf = Vec::new();
        assert!(matches!(
            write_tensor_strided(&mut buf, &[1.0], &[4], &[0]),
            Err(TensorError::InvalidSpec(_))
        ));
        // Overlapping nonzero strides: dims [3, 3] over a 5-element
        // payload declares 9 logical elements — more than the payload
        // holds, so the layout cannot be injective.
        let overlapping = raw_record(&[3, 3], &[1, 1], &[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert!(matches!(
            tensor_from_bytes(&overlapping),
            Err(TensorError::InvalidSpec(_))
        ));
        // A degenerate dimension of size 1 may carry stride 0 (it indexes
        // nothing), as NumPy-style exporters emit.
        let degenerate = raw_record(&[1, 3], &[0, 1], &[1.0, 2.0, 3.0]);
        assert_eq!(
            tensor_from_bytes(&degenerate).unwrap().data(),
            &[1.0, 2.0, 3.0]
        );
    }

    #[test]
    fn corruption_is_typed() {
        let bytes = tensor_to_bytes(&tensor(&[2, 2]));
        // Wrong magic.
        let mut wrong = bytes.clone();
        wrong[0] = b'X';
        assert!(matches!(
            tensor_from_bytes(&wrong),
            Err(TensorError::WrongMagic { .. })
        ));
        // Future version.
        let mut future = bytes.clone();
        future[4] = 0xFF;
        future[5] = 0xFF;
        assert!(matches!(
            tensor_from_bytes(&future),
            Err(TensorError::UnsupportedVersion { found: 0xFFFF, .. })
        ));
        // Unknown dtype.
        let mut dtype = bytes.clone();
        dtype[6] = 9;
        assert!(matches!(
            tensor_from_bytes(&dtype),
            Err(TensorError::UnsupportedDtype { found: 9 })
        ));
        // Truncation and trailing garbage.
        assert!(matches!(
            tensor_from_bytes(&bytes[..bytes.len() - 1]),
            Err(TensorError::Truncated { .. })
        ));
        let mut trailing = bytes.clone();
        trailing.push(0);
        assert!(matches!(
            tensor_from_bytes(&trailing),
            Err(TensorError::TrailingBytes { extra: 1 })
        ));
    }

    #[test]
    fn file_container_detects_flipped_bytes() {
        let payload = tensor_to_bytes(&tensor(&[3, 3]));
        let mut framed = frame(&payload);
        assert_eq!(unframe(&framed).unwrap(), payload.as_slice());
        // Flip one payload byte: the checksum must catch it.
        framed[20] ^= 0x40;
        assert!(matches!(
            unframe(&framed),
            Err(TensorError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn record_framing_roundtrips_and_rejects_corruption() {
        let magic = *b"BNJL";
        let a = frame_record(magic, 1, 0, b"header payload");
        let b = frame_record(magic, 1, 1, b"cell payload");
        let mut log = a.clone();
        log.extend_from_slice(&b);

        let (kind, payload, consumed) = read_record(&log, magic, 1).unwrap();
        assert_eq!((kind, payload), (0, b"header payload".as_slice()));
        assert_eq!(consumed, a.len());
        let (kind, payload, consumed) = read_record(&log[a.len()..], magic, 1).unwrap();
        assert_eq!((kind, payload), (1, b"cell payload".as_slice()));
        assert_eq!(a.len() + consumed, log.len());

        // A flipped payload byte invalidates only its own record.
        let mut rotten = log.clone();
        rotten[a.len() + 16] ^= 0x01;
        assert!(read_record(&rotten, magic, 1).is_ok());
        assert!(matches!(
            read_record(&rotten[a.len()..], magic, 1),
            Err(TensorError::ChecksumMismatch { .. })
        ));
        // Truncation mid-record is typed, never a panic.
        assert!(matches!(
            read_record(&a[..a.len() - 3], magic, 1),
            Err(TensorError::Truncated { .. })
        ));
        // Wrong magic and future versions are typed.
        assert!(matches!(
            read_record(&a, *b"XXXX", 1),
            Err(TensorError::WrongMagic { .. })
        ));
        assert!(matches!(
            read_record(&a, magic, 0),
            Err(TensorError::UnsupportedVersion { .. })
        ));
    }

    #[test]
    fn a_leftover_tmp_file_is_cleaned_up_on_the_next_write() {
        let dir = std::env::temp_dir().join(format!("blurnet-tmpclean-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.bndm");
        // A crashed earlier write (different pid) left its temporary
        // sibling behind; the naming appends to the FULL file name.
        let stale = dir.join("model.bndm.tmp.99999");
        std::fs::write(&stale, b"torn garbage from a dead process").unwrap();

        let payload = tensor_to_bytes(&tensor(&[2, 2]));
        write_file_atomic(&path, &payload).unwrap();
        assert_eq!(read_file_verified(&path).unwrap(), payload);
        assert!(!stale.exists(), "stale tmp file must be swept");
        // And the write's own tmp file is gone too.
        let residue: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .filter(|n| n.contains(".tmp."))
            .collect();
        assert!(residue.is_empty(), "tmp residue: {residue:?}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn sibling_targets_sharing_a_stem_do_not_collide() {
        // `with_extension` would have mapped both `a.bnxs` and `a.bnrp`
        // onto the same `a.tmp.<pid>`; the full-name infix must not.
        let dir = std::env::temp_dir().join(format!("blurnet-stem-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let one = tensor_to_bytes(&tensor(&[2, 2]));
        let two = tensor_to_bytes(&tensor(&[3, 3]));
        write_file_atomic(&dir.join("a.bnxs"), &one).unwrap();
        write_file_atomic(&dir.join("a.bnrp"), &two).unwrap();
        assert_eq!(read_file_verified(&dir.join("a.bnxs")).unwrap(), one);
        assert_eq!(read_file_verified(&dir.join("a.bnrp")).unwrap(), two);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn atomic_write_then_verified_read() {
        let dir = std::env::temp_dir().join(format!("blurnet-persist-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("tensor.bnp");
        let payload = tensor_to_bytes(&tensor(&[2, 5]));
        write_file_atomic(&path, &payload).unwrap();
        assert_eq!(read_file_verified(&path).unwrap(), payload);
        // No temporary residue.
        let residue = std::fs::read_dir(&dir)
            .unwrap()
            .filter(|e| {
                e.as_ref()
                    .unwrap()
                    .path()
                    .extension()
                    .is_some_and(|x| x.to_string_lossy().starts_with("tmp"))
            })
            .count();
        assert_eq!(residue, 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
