//! Pluggable compute backends for the tensor core.
//!
//! Every hot kernel the workspace runs — GEMM, conv forward/backward,
//! depthwise, separable blur, pooling — is reachable through the
//! [`Backend`] trait, with the reference CPU implementation in
//! [`CpuBackend`]. Consumers (`blurnet-nn` layers, the batch engine, the
//! defenses and the figure generators) hold an `Arc<dyn Backend>` — either
//! the process-wide [`default_backend`] or one threaded through a
//! [`Scratch`] — so an accelerator backend (e.g. a future `CudaBackend`)
//! slots in by implementing this trait and swapping the handle, without
//! touching any call site.
//!
//! # Dispatch
//!
//! CPU-feature dispatch happens once, at backend construction: a
//! [`CpuBackend`] captures a [`SimdTier`] (AVX2+FMA or portable scalar) and
//! every kernel call routes through that fixed tier. See
//! [`dispatch`](self::SimdTier) for the `BLURNET_FORCE_SCALAR` override and
//! the cross-tier bit-identity contract.

mod blur;
mod cpu;
mod dispatch;

use std::sync::{Arc, OnceLock};

pub use blur::separable_factors;
pub use cpu::CpuBackend;
pub use dispatch::SimdTier;

use crate::{
    Conv2dGrads, ConvSpec, DepthwiseGrads, MaxPoolOutput, PackedConvWeights, PoolSpec, Result,
    Scratch, Tensor,
};

/// A compute backend: the full set of hot kernels the workspace runs.
///
/// The trait is object-safe and handles are shared as `Arc<dyn Backend>`.
/// Methods that need workspace buffers take a [`Scratch`]; the scratch only
/// supplies memory — the dispatch tier always comes from the backend
/// itself, so a forced-scalar backend stays scalar even when handed a
/// scratch built for another backend.
///
/// # Numerical contract
///
/// For [`CpuBackend`], every kernel is **bit-identical across dispatch
/// tiers** (see [`SimdTier`]). Other backends only promise the documented
/// tolerance (≤ 1e-5 relative against the naive references in
/// [`crate::reference`]); `crates/tensor/tests/backend_props.rs` pins both
/// levels.
pub trait Backend: Send + Sync + std::fmt::Debug {
    /// Short identifier for logs and benchmark records (e.g. `"cpu"`).
    fn name(&self) -> &'static str;

    /// The SIMD dispatch tier this backend was constructed with.
    fn simd_tier(&self) -> SimdTier;

    /// Dense matrix product `a (m×k) · b (k×n) → (m×n)`.
    ///
    /// # Errors
    ///
    /// Returns an error if either argument is not rank 2 or the inner
    /// dimensions disagree.
    fn matmul(&self, a: &Tensor, b: &Tensor) -> Result<Tensor>;

    /// Computes `aᵀ (k×m) · b (k×n) → (m×n)` without materialising the
    /// transpose in the caller.
    ///
    /// # Errors
    ///
    /// Returns an error if either argument is not rank 2 or the shared
    /// leading dimension disagrees.
    fn matmul_transpose_a(&self, a: &Tensor, b: &Tensor) -> Result<Tensor>;

    /// Computes `a (m×k) · bᵀ (n×k) → (m×n)`, drawing the packed `bᵀ` from
    /// `scratch`.
    ///
    /// # Errors
    ///
    /// Returns an error if either argument is not rank 2 or the shared
    /// trailing dimension disagrees.
    fn matmul_transpose_b(&self, a: &Tensor, b: &Tensor, scratch: &mut Scratch) -> Result<Tensor>;

    /// Standard 2-D convolution of an `[N, C, H, W]` input with
    /// `[F, C, KH, KW]` filters; all workspace buffers come from `scratch`.
    ///
    /// # Errors
    ///
    /// Returns an error on rank/shape mismatches or if the kernel does not
    /// fit the padded input.
    fn conv2d(
        &self,
        input: &Tensor,
        weight: &Tensor,
        bias: Option<&Tensor>,
        spec: ConvSpec,
        scratch: &mut Scratch,
    ) -> Result<Tensor>;

    /// [`Backend::conv2d`] against weights packed once with
    /// [`PackedConvWeights::pack`]; bit-identical to the unpacked call on
    /// the same operands.
    ///
    /// # Errors
    ///
    /// Returns an error on rank/shape mismatches or if the kernel does not
    /// fit the padded input.
    fn conv2d_prepacked(
        &self,
        input: &Tensor,
        weights: &PackedConvWeights,
        bias: Option<&Tensor>,
        spec: ConvSpec,
        scratch: &mut Scratch,
    ) -> Result<Tensor>;

    /// Full backward pass of [`Backend::conv2d`]: input, weight and bias
    /// gradients.
    ///
    /// # Errors
    ///
    /// Returns an error on rank/shape mismatches.
    fn conv2d_backward(
        &self,
        input: &Tensor,
        weight: &Tensor,
        grad_output: &Tensor,
        spec: ConvSpec,
        scratch: &mut Scratch,
    ) -> Result<Conv2dGrads>;

    /// Input gradient of [`Backend::conv2d`] only (the attack-generation
    /// backward), for a frozen layer described by `weight` and the recorded
    /// `input_dims`.
    ///
    /// # Errors
    ///
    /// Returns an error on rank/shape mismatches between `weight`,
    /// `grad_output` and `input_dims`.
    fn conv2d_input_grad(
        &self,
        weight: &Tensor,
        grad_output: &Tensor,
        input_dims: &[usize],
        spec: ConvSpec,
        scratch: &mut Scratch,
    ) -> Result<Tensor>;

    /// [`Backend::conv2d_input_grad`] against pre-packed weights, consuming
    /// the pack's pre-flipped taps; bit-identical to the unpacked call.
    ///
    /// # Errors
    ///
    /// Returns an error on rank/shape mismatches between the pack,
    /// `grad_output` and `input_dims`.
    fn conv2d_input_grad_prepacked(
        &self,
        weights: &PackedConvWeights,
        grad_output: &Tensor,
        input_dims: &[usize],
        spec: ConvSpec,
        scratch: &mut Scratch,
    ) -> Result<Tensor>;

    /// Depthwise 2-D convolution: each channel convolved with its own
    /// `[C, KH, KW]` kernel.
    ///
    /// # Errors
    ///
    /// Returns an error on rank/shape mismatches or if the kernel does not
    /// fit.
    fn depthwise_conv2d(
        &self,
        input: &Tensor,
        weight: &Tensor,
        bias: Option<&Tensor>,
        spec: ConvSpec,
    ) -> Result<Tensor>;

    /// Full backward pass of [`Backend::depthwise_conv2d`].
    ///
    /// # Errors
    ///
    /// Returns an error on rank/shape mismatches.
    fn depthwise_conv2d_backward(
        &self,
        input: &Tensor,
        weight: &Tensor,
        grad_output: &Tensor,
        spec: ConvSpec,
    ) -> Result<DepthwiseGrads>;

    /// Input gradient of [`Backend::depthwise_conv2d`] only, for a frozen
    /// layer.
    ///
    /// # Errors
    ///
    /// Returns an error on rank/shape mismatches between `weight`,
    /// `grad_output` and `input_dims`.
    fn depthwise_input_grad(
        &self,
        weight: &Tensor,
        grad_output: &Tensor,
        input_dims: &[usize],
        spec: ConvSpec,
    ) -> Result<Tensor>;

    /// 2-D max pooling over an `[N, C, H, W]` tensor.
    ///
    /// # Errors
    ///
    /// Returns an error if the input is not rank 4 or the window does not
    /// fit.
    fn max_pool2d(&self, input: &Tensor, spec: PoolSpec) -> Result<MaxPoolOutput>;

    /// Backward pass of [`Backend::max_pool2d`], routing each output
    /// gradient to the recorded argmax position.
    ///
    /// # Errors
    ///
    /// Returns an error if `grad_output` does not match the recorded
    /// pooling output shape or an argmax index falls outside `input_dims`.
    fn max_pool2d_backward(
        &self,
        grad_output: &Tensor,
        argmax: &[usize],
        input_dims: &[usize],
    ) -> Result<Tensor>;

    /// Applies a blur kernel to every channel of an `[N, C, H, W]` batch
    /// with "same" padding. Separable (rank-1) odd kernels take the
    /// two-pass `O(k)`-per-pixel fast path; anything else falls back to a
    /// depthwise 2-D convolution.
    ///
    /// # Errors
    ///
    /// Returns an error if the batch is not rank 4 or the kernel is
    /// invalid (non-square, or of even extent — "same" padding needs a
    /// centre tap).
    fn blur_batch(&self, batch: &Tensor, kernel: &Tensor) -> Result<Tensor>;

    /// Applies a blur kernel to every channel of a single `[C, H, W]`
    /// image; provided in terms of [`Backend::blur_batch`].
    ///
    /// # Errors
    ///
    /// Returns an error if the image is not rank 3 or the kernel is
    /// invalid.
    fn blur_image(&self, image: &Tensor, kernel: &Tensor) -> Result<Tensor> {
        if image.shape().rank() != 3 {
            return Err(crate::TensorError::RankMismatch {
                expected: 3,
                actual: image.shape().rank(),
            });
        }
        let dims = image.dims().to_vec();
        let batch = image.reshape(&[1, dims[0], dims[1], dims[2]])?;
        let blurred = self.blur_batch(&batch, kernel)?;
        blurred.reshape(&dims)
    }
}

/// The process-wide default backend: a [`CpuBackend`] at the tier
/// [`SimdTier::detect`] picked, constructed once on first use.
///
/// Free-function entry points and freshly created [`Scratch`] pools all
/// route through this handle; tests that need a specific tier build their
/// own [`CpuBackend::with_tier`] instead.
pub fn default_backend() -> Arc<dyn Backend> {
    static BACKEND: OnceLock<Arc<dyn Backend>> = OnceLock::new();
    Arc::clone(BACKEND.get_or_init(|| Arc::new(CpuBackend::new())))
}

pub(crate) use blur::blur_batch;
