//! Separable blur kernels: the filtering primitive of the BlurNet defense.
//!
//! Box and Gaussian kernels are rank-1 (`K = u·vᵀ`), so [`blur_batch`]
//! factors the kernel once and applies two 1-D passes — `O(k)` work per
//! pixel instead of `O(k²)` — with planes distributed over rayon threads
//! and the row-pass intermediate drawn from the shared [`Scratch`] pool.
//! Non-separable kernels fall back to the generic depthwise 2-D path.
//!
//! This machinery lives in the tensor crate (behind
//! [`Backend::blur_batch`](super::Backend::blur_batch)) so the defenses
//! call it through the backend trait; `blurnet-signal` re-exports thin
//! wrappers for its public API. The blur is tier-independent — no kernel
//! here carries SIMD dispatch — so it is byte-identical on every
//! [`SimdTier`](super::SimdTier).

use rayon::prelude::*;

use crate::{ConvSpec, Result, Scratch, Tensor, TensorError};

/// Work (in multiply-adds) below which the blur stays sequential.
const PAR_WORK: usize = 1 << 16;

/// Attempts a rank-1 factorisation `K = u · vᵀ` of a square kernel.
///
/// Pivots on the largest-magnitude entry and verifies the reconstruction to
/// a relative 1e-6, so float noise in a genuinely separable kernel (box,
/// Gaussian) passes while mixed kernels are rejected. Returns `(u, v)` with
/// `u` the column (vertical) factor and `v` the row (horizontal) factor.
pub fn separable_factors(kernel: &Tensor) -> Option<(Vec<f32>, Vec<f32>)> {
    if kernel.shape().rank() != 2 || kernel.dims()[0] != kernel.dims()[1] {
        return None;
    }
    let k = kernel.dims()[0];
    let data = kernel.data();
    let (mut py, mut px, mut peak) = (0usize, 0usize, 0.0f32);
    for y in 0..k {
        for x in 0..k {
            let v = data[y * k + x].abs();
            if v > peak {
                peak = v;
                py = y;
                px = x;
            }
        }
    }
    if peak == 0.0 {
        // The zero kernel is trivially separable.
        return Some((vec![0.0; k], vec![0.0; k]));
    }
    let pivot = data[py * k + px];
    let u: Vec<f32> = (0..k).map(|y| data[y * k + px]).collect();
    let v: Vec<f32> = (0..k).map(|x| data[py * k + x] / pivot).collect();
    let tol = 1e-6 * peak;
    for y in 0..k {
        for x in 0..k {
            if (data[y * k + x] - u[y] * v[x]).abs() > tol {
                return None;
            }
        }
    }
    Some((u, v))
}

/// Horizontal "same" 1-D pass: `dst[y][x] = Σ_t v[t] · src[y][x + t - pad]`,
/// written as shifted-slice axpy so the inner loop vectorises.
fn row_pass(dst: &mut [f32], src: &[f32], v: &[f32], h: usize, w: usize) {
    let k = v.len();
    let pad = (k / 2) as isize;
    dst.fill(0.0);
    for (t, &weight) in v.iter().enumerate() {
        let dx = t as isize - pad;
        let x_lo = (-dx).max(0) as usize;
        let x_hi = ((w as isize - dx).min(w as isize)).max(0) as usize;
        if x_lo >= x_hi {
            continue;
        }
        for y in 0..h {
            let src_start = y * w + (dx + x_lo as isize) as usize;
            let s = &src[src_start..src_start + (x_hi - x_lo)];
            let d = &mut dst[y * w + x_lo..y * w + x_hi];
            for (o, &x) in d.iter_mut().zip(s.iter()) {
                *o += weight * x;
            }
        }
    }
}

/// Vertical "same" 1-D pass: `dst[y][x] = Σ_t u[t] · src[y + t - pad][x]`,
/// written as whole-row axpy.
fn col_pass(dst: &mut [f32], src: &[f32], u: &[f32], h: usize, w: usize) {
    let k = u.len();
    let pad = (k / 2) as isize;
    dst.fill(0.0);
    for (t, &weight) in u.iter().enumerate() {
        let dy = t as isize - pad;
        let y_lo = (-dy).max(0) as usize;
        let y_hi = ((h as isize - dy).min(h as isize)).max(0) as usize;
        for y in y_lo..y_hi {
            let s_row = ((y as isize + dy) as usize) * w;
            let s = &src[s_row..s_row + w];
            let d = &mut dst[y * w..y * w + w];
            for (o, &x) in d.iter_mut().zip(s.iter()) {
                *o += weight * x;
            }
        }
    }
}

/// Expands a single `[K, K]` kernel into per-channel depthwise weights
/// `[C, K, K]` so every channel is filtered identically.
fn depthwise_weights(kernel: &Tensor, channels: usize) -> Result<Tensor> {
    if kernel.shape().rank() != 2 || kernel.dims()[0] != kernel.dims()[1] {
        return Err(TensorError::InvalidSpec(format!(
            "blur kernel must be a square rank-2 tensor, got {}",
            kernel.shape()
        )));
    }
    let k = kernel.dims()[0];
    let mut data = Vec::with_capacity(channels * k * k);
    for _ in 0..channels {
        data.extend_from_slice(kernel.data());
    }
    Tensor::from_vec(data, &[channels, k, k])
}

/// Applies a blur kernel to every channel of an `[N, C, H, W]` batch using
/// "same" padding; separable odd kernels take the two-pass fast path,
/// everything else falls back to [`blur_batch_2d`].
pub(crate) fn blur_batch(batch: &Tensor, kernel: &Tensor) -> Result<Tensor> {
    if batch.shape().rank() != 4 {
        return Err(TensorError::RankMismatch {
            expected: 4,
            actual: batch.shape().rank(),
        });
    }
    let k = kernel.dims().first().copied().unwrap_or(0);
    match separable_factors(kernel) {
        Some((u, v)) if k % 2 == 1 => {
            let d = batch.dims();
            let (n, c, h, w) = (d[0], d[1], d[2], d[3]);
            let planes = n * c;
            let hw = h * w;
            let data = batch.data();
            let mut out = vec![0.0f32; planes * hw];
            Scratch::with_thread_local(|scratch| {
                let mut tmp = scratch.take_dirty(planes * hw);
                // Pass 1 (horizontal) into tmp, pass 2 (vertical) into out;
                // each plane is written by exactly one task.
                if planes * hw * k < PAR_WORK || rayon::current_num_threads() <= 1 {
                    for (pi, t) in tmp.chunks_mut(hw).enumerate() {
                        row_pass(t, &data[pi * hw..(pi + 1) * hw], &v, h, w);
                    }
                    for (pi, o) in out.chunks_mut(hw).enumerate() {
                        col_pass(o, &tmp[pi * hw..(pi + 1) * hw], &u, h, w);
                    }
                } else {
                    tmp.par_chunks_mut(hw).enumerate().for_each(|(pi, t)| {
                        row_pass(t, &data[pi * hw..(pi + 1) * hw], &v, h, w);
                    });
                    let tmp_ref: &[f32] = &tmp;
                    out.par_chunks_mut(hw).enumerate().for_each(|(pi, o)| {
                        col_pass(o, &tmp_ref[pi * hw..(pi + 1) * hw], &u, h, w);
                    });
                }
                scratch.put(tmp);
            });
            Tensor::from_vec(out, &[n, c, h, w])
        }
        _ => blur_batch_2d(batch, kernel),
    }
}

/// Generic 2-D blur path: depthwise convolution with the full `k × k`
/// kernel, used for non-separable kernels.
pub(crate) fn blur_batch_2d(batch: &Tensor, kernel: &Tensor) -> Result<Tensor> {
    if batch.shape().rank() != 4 {
        return Err(TensorError::RankMismatch {
            expected: 4,
            actual: batch.shape().rank(),
        });
    }
    let channels = batch.dims()[1];
    let weights = depthwise_weights(kernel, channels)?;
    let k = kernel.dims()[0];
    let spec = ConvSpec::same(k)?;
    crate::conv::depthwise_conv2d(batch, &weights, None, spec)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn box_kernel(k: usize) -> Tensor {
        Tensor::full(&[k, k], 1.0 / (k * k) as f32)
    }

    #[test]
    fn separable_path_matches_2d_path() {
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
        let batch = Tensor::rand_uniform(&[2, 3, 13, 9], -1.0, 1.0, &mut rng);
        for kernel in [box_kernel(3), box_kernel(5)] {
            let fast = blur_batch(&batch, &kernel).unwrap();
            let slow = blur_batch_2d(&batch, &kernel).unwrap();
            assert_eq!(fast.dims(), slow.dims());
            for (a, b) in fast.data().iter().zip(slow.data().iter()) {
                assert!((a - b).abs() < 1e-5, "{a} vs {b}");
            }
        }
    }

    #[test]
    fn shape_errors() {
        let k = box_kernel(3);
        assert!(blur_batch(&Tensor::zeros(&[3, 4, 4]), &k).is_err());
        // Even kernels have no symmetric "same" padding.
        assert!(blur_batch(&Tensor::zeros(&[1, 1, 4, 4]), &Tensor::full(&[2, 2], 0.25)).is_err());
        // Non-square kernels are rejected by the 2-D fallback.
        assert!(blur_batch(&Tensor::zeros(&[1, 1, 4, 4]), &Tensor::zeros(&[3, 4])).is_err());
    }
}
