//! One-time runtime CPU-feature dispatch for the compute kernels.
//!
//! The hot entry points used to re-query `is_x86_feature_detected!` on
//! every `gemm_rows` row block and every image of a direct convolution.
//! The queries are individually cheap (std caches them behind an atomic),
//! but they scattered the dispatch decision across call sites, made the
//! scalar path untestable on SIMD hosts, and broke the build on non-x86
//! targets. Dispatch now happens exactly once: [`SimdTier::detect`] probes
//! the CPU (honouring the `BLURNET_FORCE_SCALAR` override) the first time
//! any kernel runs, and the resulting [`SimdTier`] is threaded *by value*
//! through the kernel internals — so two backends with different tiers can
//! coexist in one process, which is what the cross-dispatch property tests
//! rely on.

use std::sync::OnceLock;

/// The kernel table a CPU backend dispatches through, fixed at backend
/// construction.
///
/// # Numerical contract
///
/// Both tiers contract every multiply-add with `f32::mul_add` — a single
/// correctly-rounded fused operation whether it lowers to `vfmadd`
/// (AVX2+FMA), `fmla` (AArch64) or libm's `fmaf` (baseline x86-64) — and
/// both accumulate each output element in the same sequential k-order, so
/// **every kernel produces bit-identical results on every tier**. Forcing
/// the scalar tier changes speed, never bytes; the golden micro-grid and
/// `tests/backend_props.rs` pin this.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimdTier {
    /// AVX2 + FMA vectorised kernels (x86-64 only, verified at runtime).
    Avx2Fma,
    /// Portable scalar kernels; the only tier on non-x86 targets.
    Scalar,
}

impl SimdTier {
    /// Detects the widest tier this CPU supports, once per process.
    ///
    /// Set `BLURNET_FORCE_SCALAR=1` (any value other than `0` or the empty
    /// string) to force [`SimdTier::Scalar`] — the way CI proves the scalar
    /// path produces byte-identical artifacts on AVX2 hosts. The probe and
    /// the environment read happen on first use and are cached for the
    /// process lifetime; tests that need both tiers side by side construct
    /// backends with [`CpuBackend::with_tier`] instead of mutating the
    /// environment.
    ///
    /// [`CpuBackend::with_tier`]: super::CpuBackend::with_tier
    pub fn detect() -> SimdTier {
        static TIER: OnceLock<SimdTier> = OnceLock::new();
        *TIER.get_or_init(|| {
            if force_scalar() {
                return SimdTier::Scalar;
            }
            Self::widest_supported()
        })
    }

    /// The widest tier the running CPU actually supports, ignoring the
    /// environment override.
    pub(crate) fn widest_supported() -> SimdTier {
        #[cfg(target_arch = "x86_64")]
        if std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
        {
            return SimdTier::Avx2Fma;
        }
        SimdTier::Scalar
    }

    /// Whether this CPU can execute the tier's kernels.
    pub fn is_supported(self) -> bool {
        match self {
            SimdTier::Avx2Fma => Self::widest_supported() == SimdTier::Avx2Fma,
            SimdTier::Scalar => true,
        }
    }

    /// Stable lower-case name, used by benchmark records and log lines.
    pub fn as_str(self) -> &'static str {
        match self {
            SimdTier::Avx2Fma => "avx2_fma",
            SimdTier::Scalar => "scalar",
        }
    }
}

impl std::fmt::Display for SimdTier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Reads the `BLURNET_FORCE_SCALAR` override; `0`, the empty string and an
/// unset variable all mean "not forced".
fn force_scalar() -> bool {
    match std::env::var("BLURNET_FORCE_SCALAR") {
        Ok(v) => !(v.is_empty() || v == "0"),
        Err(_) => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detect_is_stable_and_supported() {
        let first = SimdTier::detect();
        assert_eq!(first, SimdTier::detect());
        assert!(first.is_supported());
    }

    #[test]
    fn scalar_is_always_supported() {
        assert!(SimdTier::Scalar.is_supported());
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(SimdTier::Avx2Fma.as_str(), "avx2_fma");
        assert_eq!(SimdTier::Scalar.as_str(), "scalar");
        assert_eq!(SimdTier::Scalar.to_string(), "scalar");
    }
}
