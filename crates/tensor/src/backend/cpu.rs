//! The reference CPU backend: the workspace's existing blocked/tiled
//! kernels behind the [`Backend`] trait, dispatched through a [`SimdTier`]
//! fixed at construction.

use super::{Backend, SimdTier};
use crate::{
    Conv2dGrads, ConvSpec, DepthwiseGrads, MaxPoolOutput, PackedConvWeights, PoolSpec, Result,
    Scratch, Tensor,
};

/// The reference CPU implementation of [`Backend`].
///
/// Construction fixes the dispatch tier once — [`CpuBackend::new`] probes
/// the CPU (honouring `BLURNET_FORCE_SCALAR`), [`CpuBackend::with_tier`]
/// pins an explicit tier — and every kernel call then routes through that
/// tier without re-querying CPU features. Two backends with different
/// tiers coexist safely in one process; the cross-dispatch property tests
/// rely on exactly that.
#[derive(Debug, Clone)]
pub struct CpuBackend {
    tier: SimdTier,
}

impl CpuBackend {
    /// A backend at the widest tier this CPU supports (once-per-process
    /// detection, `BLURNET_FORCE_SCALAR=1` forces the scalar tier).
    pub fn new() -> Self {
        CpuBackend {
            tier: SimdTier::detect(),
        }
    }

    /// A backend pinned to `tier`.
    ///
    /// A tier the running CPU cannot execute (e.g. [`SimdTier::Avx2Fma`] on
    /// a non-AVX2 host) is clamped to [`SimdTier::Scalar`] — the unsafe
    /// vectorised kernels are only ever entered on a verified-capable CPU,
    /// so constructing a backend is always sound.
    pub fn with_tier(tier: SimdTier) -> Self {
        let tier = if tier.is_supported() {
            tier
        } else {
            SimdTier::Scalar
        };
        CpuBackend { tier }
    }
}

impl Default for CpuBackend {
    fn default() -> Self {
        CpuBackend::new()
    }
}

impl Backend for CpuBackend {
    fn name(&self) -> &'static str {
        "cpu"
    }

    fn simd_tier(&self) -> SimdTier {
        self.tier
    }

    fn matmul(&self, a: &Tensor, b: &Tensor) -> Result<Tensor> {
        crate::matmul::matmul_t(self.tier, a, b)
    }

    fn matmul_transpose_a(&self, a: &Tensor, b: &Tensor) -> Result<Tensor> {
        crate::matmul::matmul_transpose_a_t(self.tier, a, b)
    }

    fn matmul_transpose_b(&self, a: &Tensor, b: &Tensor, scratch: &mut Scratch) -> Result<Tensor> {
        crate::matmul::matmul_transpose_b_with_scratch_t(self.tier, a, b, scratch)
    }

    fn conv2d(
        &self,
        input: &Tensor,
        weight: &Tensor,
        bias: Option<&Tensor>,
        spec: ConvSpec,
        scratch: &mut Scratch,
    ) -> Result<Tensor> {
        crate::conv::conv2d_with_scratch_t(self.tier, input, weight, bias, spec, scratch)
    }

    fn conv2d_prepacked(
        &self,
        input: &Tensor,
        weights: &PackedConvWeights,
        bias: Option<&Tensor>,
        spec: ConvSpec,
        scratch: &mut Scratch,
    ) -> Result<Tensor> {
        crate::conv::conv2d_prepacked_t(self.tier, input, weights, bias, spec, scratch)
    }

    fn conv2d_backward(
        &self,
        input: &Tensor,
        weight: &Tensor,
        grad_output: &Tensor,
        spec: ConvSpec,
        scratch: &mut Scratch,
    ) -> Result<Conv2dGrads> {
        crate::conv::conv2d_backward_with_scratch_t(
            self.tier,
            input,
            weight,
            grad_output,
            spec,
            scratch,
        )
    }

    fn conv2d_input_grad(
        &self,
        weight: &Tensor,
        grad_output: &Tensor,
        input_dims: &[usize],
        spec: ConvSpec,
        scratch: &mut Scratch,
    ) -> Result<Tensor> {
        crate::conv::conv2d_input_grad_with_scratch_t(
            self.tier,
            weight,
            grad_output,
            input_dims,
            spec,
            scratch,
        )
    }

    fn conv2d_input_grad_prepacked(
        &self,
        weights: &PackedConvWeights,
        grad_output: &Tensor,
        input_dims: &[usize],
        spec: ConvSpec,
        scratch: &mut Scratch,
    ) -> Result<Tensor> {
        crate::conv::conv2d_input_grad_prepacked_t(
            self.tier,
            weights,
            grad_output,
            input_dims,
            spec,
            scratch,
        )
    }

    fn depthwise_conv2d(
        &self,
        input: &Tensor,
        weight: &Tensor,
        bias: Option<&Tensor>,
        spec: ConvSpec,
    ) -> Result<Tensor> {
        // Tier-independent: the depthwise kernels carry no SIMD dispatch.
        crate::conv::depthwise_conv2d(input, weight, bias, spec)
    }

    fn depthwise_conv2d_backward(
        &self,
        input: &Tensor,
        weight: &Tensor,
        grad_output: &Tensor,
        spec: ConvSpec,
    ) -> Result<DepthwiseGrads> {
        crate::conv::depthwise_conv2d_backward(input, weight, grad_output, spec)
    }

    fn depthwise_input_grad(
        &self,
        weight: &Tensor,
        grad_output: &Tensor,
        input_dims: &[usize],
        spec: ConvSpec,
    ) -> Result<Tensor> {
        crate::conv::depthwise_input_grad(weight, grad_output, input_dims, spec)
    }

    fn max_pool2d(&self, input: &Tensor, spec: PoolSpec) -> Result<MaxPoolOutput> {
        crate::pool::max_pool2d(input, spec)
    }

    fn max_pool2d_backward(
        &self,
        grad_output: &Tensor,
        argmax: &[usize],
        input_dims: &[usize],
    ) -> Result<Tensor> {
        crate::pool::max_pool2d_backward(grad_output, argmax, input_dims)
    }

    fn blur_batch(&self, batch: &Tensor, kernel: &Tensor) -> Result<Tensor> {
        super::blur_batch(batch, kernel)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn with_tier_clamps_to_supported() {
        let b = CpuBackend::with_tier(SimdTier::Avx2Fma);
        assert!(b.simd_tier().is_supported());
        assert_eq!(
            CpuBackend::with_tier(SimdTier::Scalar).simd_tier(),
            SimdTier::Scalar
        );
    }

    #[test]
    fn default_matches_detection() {
        assert_eq!(CpuBackend::new().simd_tier(), SimdTier::detect());
        assert_eq!(CpuBackend::default().simd_tier(), SimdTier::detect());
    }
}
