//! Reusable workspace buffers for the convolution/GEMM pipeline.
//!
//! The hot paths (im2col, conv forward/backward, matmul transposes) need
//! large intermediate `Vec<f32>` buffers. Allocating them fresh on every
//! call dominates small-batch workloads, so a [`Scratch`] keeps returned
//! buffers alive for the next call. Layers in `blurnet-nn` own a `Scratch`
//! per layer; free functions fall back to a thread-local pool via
//! [`Scratch::with_thread_local`].

use std::cell::RefCell;
use std::sync::Arc;

use crate::backend::{default_backend, Backend, SimdTier};

/// A pool of reusable `f32` buffers, bound to a compute [`Backend`].
///
/// `take` hands out a zeroed buffer of the requested length (reusing the
/// best-fitting pooled allocation), `put` returns it. Buffers are plain
/// `Vec<f32>`, so leaking one (forgetting `put`) is safe — it just allocates
/// again next time.
///
/// The backend handle is how layers and free functions discover which
/// kernels to dispatch to: [`Scratch::new`] binds the process-wide
/// [`default_backend`], [`Scratch::with_backend`] binds an explicit one
/// (e.g. a forced-scalar [`crate::CpuBackend`] in cross-dispatch tests).
#[derive(Debug)]
pub struct Scratch {
    pool: Vec<Vec<f32>>,
    backend: Arc<dyn Backend>,
}

/// How many returned buffers the pool keeps before dropping the smallest.
const MAX_POOLED: usize = 8;

impl Scratch {
    /// Creates an empty pool bound to the process-wide [`default_backend`].
    pub fn new() -> Self {
        Scratch {
            pool: Vec::new(),
            backend: default_backend(),
        }
    }

    /// Creates an empty pool bound to an explicit backend.
    pub fn with_backend(backend: Arc<dyn Backend>) -> Self {
        Scratch {
            pool: Vec::new(),
            backend,
        }
    }

    /// The backend this pool is bound to, as an owned handle (cloning the
    /// `Arc` keeps the pool borrowable mutably while kernels run).
    pub fn backend(&self) -> Arc<dyn Backend> {
        Arc::clone(&self.backend)
    }

    /// The bound backend's dispatch tier — the tier free-function entry
    /// points use when handed this scratch.
    pub(crate) fn tier(&self) -> SimdTier {
        self.backend.simd_tier()
    }

    /// Pops the pooled allocation with the smallest sufficient capacity for
    /// `len`, falling back to the largest pooled buffer (it grows in place)
    /// rather than leaving it behind and allocating a second copy.
    fn pop_best(&mut self, len: usize) -> Option<Vec<f32>> {
        let mut best: Option<usize> = None;
        for (i, buf) in self.pool.iter().enumerate() {
            if buf.capacity() >= len {
                match best {
                    Some(b) if self.pool[b].capacity() <= buf.capacity() => {}
                    _ => best = Some(i),
                }
            }
        }
        if best.is_none() && !self.pool.is_empty() {
            let mut largest = 0;
            for (i, buf) in self.pool.iter().enumerate() {
                if buf.capacity() > self.pool[largest].capacity() {
                    largest = i;
                }
            }
            best = Some(largest);
        }
        best.map(|i| self.pool.swap_remove(i))
    }

    /// Returns a zero-filled buffer of exactly `len` elements, reusing the
    /// pooled allocation with the smallest sufficient capacity when one
    /// exists.
    pub fn take(&mut self, len: usize) -> Vec<f32> {
        match self.pop_best(len) {
            Some(mut buf) => {
                buf.clear();
                buf.resize(len, 0.0);
                buf
            }
            None => vec![0.0; len],
        }
    }

    /// Returns a buffer of exactly `len` elements whose contents are
    /// unspecified (stale data from a previous use, or zeros).
    ///
    /// For workspaces the caller fully overwrites before reading — GEMM
    /// outputs, transpose targets — this skips the `memset` that [`take`]
    /// pays on every call. Steady-state reuse at a stable size touches no
    /// memory at all; only growth beyond the pooled length zero-fills the
    /// new tail.
    ///
    /// [`take`]: Scratch::take
    pub fn take_dirty(&mut self, len: usize) -> Vec<f32> {
        match self.pop_best(len) {
            Some(mut buf) => {
                if buf.len() >= len {
                    buf.truncate(len);
                } else {
                    buf.resize(len, 0.0);
                }
                buf
            }
            None => vec![0.0; len],
        }
    }

    /// Returns a buffer to the pool for reuse.
    pub fn put(&mut self, buf: Vec<f32>) {
        if buf.capacity() == 0 {
            return;
        }
        if self.pool.len() >= MAX_POOLED {
            // Evict the smallest allocation to bound held memory.
            let mut smallest = 0;
            for (i, b) in self.pool.iter().enumerate() {
                if b.capacity() < self.pool[smallest].capacity() {
                    smallest = i;
                }
            }
            if self.pool[smallest].capacity() >= buf.capacity() {
                return;
            }
            self.pool.swap_remove(smallest);
        }
        self.pool.push(buf);
    }

    /// Number of pooled buffers (diagnostics/tests).
    pub fn pooled(&self) -> usize {
        self.pool.len()
    }

    /// Runs `f` with this thread's shared scratch pool — the default pool
    /// used by the free-function entry points (`matmul`, `conv2d`, …) so
    /// repeated calls reuse buffers without any caller-side plumbing.
    pub fn with_thread_local<R>(f: impl FnOnce(&mut Scratch) -> R) -> R {
        thread_local! {
            static SCRATCH: RefCell<Scratch> = RefCell::new(Scratch::new());
        }
        SCRATCH.with(|s| f(&mut s.borrow_mut()))
    }
}

impl Default for Scratch {
    fn default() -> Self {
        Scratch::new()
    }
}

impl Clone for Scratch {
    /// Cloning a layer must not duplicate cached workspace memory; clones
    /// keep the backend binding but start with an empty pool.
    fn clone(&self) -> Self {
        Scratch::with_backend(Arc::clone(&self.backend))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_returns_zeroed_buffers_and_reuses_capacity() {
        let mut s = Scratch::new();
        let mut a = s.take(1024);
        assert_eq!(a.len(), 1024);
        assert!(a.iter().all(|&v| v == 0.0));
        a.iter_mut().for_each(|v| *v = 7.0);
        let ptr = a.as_ptr();
        s.put(a);
        let b = s.take(512);
        // Same allocation handed back, re-zeroed.
        assert_eq!(b.as_ptr(), ptr);
        assert_eq!(b.len(), 512);
        assert!(b.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn pool_is_bounded() {
        let mut s = Scratch::new();
        for i in 0..32 {
            s.put(vec![0.0; 64 + i]);
        }
        assert!(s.pooled() <= MAX_POOLED);
    }

    #[test]
    fn clone_starts_empty() {
        let mut s = Scratch::new();
        s.put(vec![0.0; 128]);
        assert_eq!(s.clone().pooled(), 0);
    }

    #[test]
    fn thread_local_pool_persists_across_calls() {
        let ptr = Scratch::with_thread_local(|s| {
            let buf = s.take(256);
            let p = buf.as_ptr();
            s.put(buf);
            p
        });
        let ptr2 = Scratch::with_thread_local(|s| {
            let buf = s.take(256);
            let p = buf.as_ptr();
            s.put(buf);
            p
        });
        assert_eq!(ptr, ptr2);
    }
}
