//! Minimal NCHW `f32` tensor library for the BlurNet reproduction.
//!
//! The crate provides exactly the numeric substrate the rest of the
//! workspace needs: a dense row-major [`Tensor`], blocked matrix
//! multiplication, im2col-based 2-D convolution (regular and depthwise)
//! with full gradients, max-pooling, separable blur, and seeded weight
//! initializers — all reachable through the [`Backend`] trait, whose
//! [`CpuBackend`] implementation fixes its SIMD dispatch tier once at
//! construction (see [`SimdTier`]).
//!
//! # Example
//!
//! ```
//! use blurnet_tensor::Tensor;
//!
//! let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2])?;
//! let b = Tensor::ones(&[2, 2]);
//! let c = a.add(&b)?;
//! assert_eq!(c.data(), &[2.0, 3.0, 4.0, 5.0]);
//! # Ok::<(), blurnet_tensor::TensorError>(())
//! ```

#![deny(missing_docs)]

pub mod backend;
mod conv;
mod error;
mod init;
mod matmul;
pub mod persist;
mod pool;
mod scratch;
mod shape;
mod tensor;

pub use backend::{default_backend, separable_factors, Backend, CpuBackend, SimdTier};
pub use conv::{
    col2im, conv2d, conv2d_backward, conv2d_backward_with_scratch, conv2d_input_grad_prepacked,
    conv2d_input_grad_with_scratch, conv2d_prepacked, conv2d_with_scratch, depthwise_conv2d,
    depthwise_conv2d_backward, depthwise_input_grad, im2col, Conv2dGrads, ConvSpec, DepthwiseGrads,
    PackedConvWeights,
};
pub use error::TensorError;
pub use init::{kaiming_uniform, xavier_uniform, Initializer};
pub use matmul::{matmul, matmul_transpose_a, matmul_transpose_b, matmul_transpose_b_with_scratch};

/// Seed (pre-optimisation) implementations, kept verbatim so equivalence
/// tests and `substrate_micro` can pin the fast paths against them. Never
/// use these on hot paths.
pub mod reference {
    pub use crate::conv::reference::depthwise_conv2d_naive;
    pub use crate::matmul::reference::matmul_naive;
}
pub use pool::{max_pool2d, max_pool2d_backward, MaxPoolOutput, PoolSpec};
pub use scratch::Scratch;
pub use shape::Shape;
pub use tensor::Tensor;

/// Convenient result alias used across the crate.
pub type Result<T> = std::result::Result<T, TensorError>;
