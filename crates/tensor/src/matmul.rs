use crate::{Result, Tensor, TensorError};

fn dims2(t: &Tensor) -> Result<(usize, usize)> {
    if t.shape().rank() != 2 {
        return Err(TensorError::RankMismatch {
            expected: 2,
            actual: t.shape().rank(),
        });
    }
    Ok((t.shape().dim(0), t.shape().dim(1)))
}

/// Dense matrix product `a (m×k) · b (k×n) → (m×n)`.
///
/// Uses a cache-friendly ikj loop order; this is the hot path for every
/// convolution (via im2col) and dense layer in the workspace.
///
/// # Errors
///
/// Returns an error if either argument is not rank 2 or the inner
/// dimensions disagree.
pub fn matmul(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    let (m, k) = dims2(a)?;
    let (k2, n) = dims2(b)?;
    if k != k2 {
        return Err(TensorError::MatmulDimMismatch {
            left_cols: k,
            right_rows: k2,
        });
    }
    let a_data = a.data();
    let b_data = b.data();
    let mut out = vec![0.0f32; m * n];
    for i in 0..m {
        let a_row = &a_data[i * k..(i + 1) * k];
        let out_row = &mut out[i * n..(i + 1) * n];
        for (p, &a_ip) in a_row.iter().enumerate() {
            if a_ip == 0.0 {
                continue;
            }
            let b_row = &b_data[p * n..(p + 1) * n];
            for (o, &b_pj) in out_row.iter_mut().zip(b_row.iter()) {
                *o += a_ip * b_pj;
            }
        }
    }
    Tensor::from_vec(out, &[m, n])
}

/// Computes `aᵀ (k×m) · b (k×n) → (m×n)` without materialising the transpose.
///
/// # Errors
///
/// Returns an error if either argument is not rank 2 or the shared leading
/// dimension disagrees.
pub fn matmul_transpose_a(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    let (k, m) = dims2(a)?;
    let (k2, n) = dims2(b)?;
    if k != k2 {
        return Err(TensorError::MatmulDimMismatch {
            left_cols: k,
            right_rows: k2,
        });
    }
    let a_data = a.data();
    let b_data = b.data();
    let mut out = vec![0.0f32; m * n];
    for p in 0..k {
        let a_row = &a_data[p * m..(p + 1) * m];
        let b_row = &b_data[p * n..(p + 1) * n];
        for (i, &a_pi) in a_row.iter().enumerate() {
            if a_pi == 0.0 {
                continue;
            }
            let out_row = &mut out[i * n..(i + 1) * n];
            for (o, &b_pj) in out_row.iter_mut().zip(b_row.iter()) {
                *o += a_pi * b_pj;
            }
        }
    }
    Tensor::from_vec(out, &[m, n])
}

/// Computes `a (m×k) · bᵀ (n×k) → (m×n)` without materialising the transpose.
///
/// # Errors
///
/// Returns an error if either argument is not rank 2 or the shared trailing
/// dimension disagrees.
pub fn matmul_transpose_b(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    let (m, k) = dims2(a)?;
    let (n, k2) = dims2(b)?;
    if k != k2 {
        return Err(TensorError::MatmulDimMismatch {
            left_cols: k,
            right_rows: k2,
        });
    }
    let a_data = a.data();
    let b_data = b.data();
    let mut out = vec![0.0f32; m * n];
    for i in 0..m {
        let a_row = &a_data[i * k..(i + 1) * k];
        for j in 0..n {
            let b_row = &b_data[j * k..(j + 1) * k];
            let mut acc = 0.0f32;
            for (&x, &y) in a_row.iter().zip(b_row.iter()) {
                acc += x * y;
            }
            out[i * n + j] = acc;
        }
    }
    Tensor::from_vec(out, &[m, n])
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn naive(a: &Tensor, b: &Tensor) -> Tensor {
        let (m, k) = (a.dims()[0], a.dims()[1]);
        let n = b.dims()[1];
        let mut out = Tensor::zeros(&[m, n]);
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0;
                for p in 0..k {
                    acc += a.get(&[i, p]).unwrap() * b.get(&[p, j]).unwrap();
                }
                out.set(&[i, j], acc).unwrap();
            }
        }
        out
    }

    fn transpose(t: &Tensor) -> Tensor {
        let (r, c) = (t.dims()[0], t.dims()[1]);
        let mut out = Tensor::zeros(&[c, r]);
        for i in 0..r {
            for j in 0..c {
                out.set(&[j, i], t.get(&[i, j]).unwrap()).unwrap();
            }
        }
        out
    }

    #[test]
    fn small_known_product() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]).unwrap();
        let b = Tensor::from_vec(vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0], &[3, 2]).unwrap();
        let c = matmul(&a, &b).unwrap();
        assert_eq!(c.dims(), &[2, 2]);
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matches_naive_on_random_matrices() {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let a = Tensor::rand_uniform(&[7, 5], -1.0, 1.0, &mut rng);
        let b = Tensor::rand_uniform(&[5, 9], -1.0, 1.0, &mut rng);
        let fast = matmul(&a, &b).unwrap();
        let slow = naive(&a, &b);
        for (x, y) in fast.data().iter().zip(slow.data().iter()) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn transpose_variants_match_explicit_transpose() {
        let mut rng = ChaCha8Rng::seed_from_u64(13);
        let a = Tensor::rand_uniform(&[6, 4], -1.0, 1.0, &mut rng);
        let b = Tensor::rand_uniform(&[6, 3], -1.0, 1.0, &mut rng);
        let expected = matmul(&transpose(&a), &b).unwrap();
        let got = matmul_transpose_a(&a, &b).unwrap();
        for (x, y) in got.data().iter().zip(expected.data().iter()) {
            assert!((x - y).abs() < 1e-5);
        }

        let c = Tensor::rand_uniform(&[4, 5], -1.0, 1.0, &mut rng);
        let d = Tensor::rand_uniform(&[7, 5], -1.0, 1.0, &mut rng);
        let expected = matmul(&c, &transpose(&d)).unwrap();
        let got = matmul_transpose_b(&c, &d).unwrap();
        for (x, y) in got.data().iter().zip(expected.data().iter()) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn dimension_errors() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[4, 2]);
        assert!(matches!(
            matmul(&a, &b),
            Err(TensorError::MatmulDimMismatch { .. })
        ));
        let v = Tensor::zeros(&[3]);
        assert!(matches!(
            matmul(&v, &b),
            Err(TensorError::RankMismatch { .. })
        ));
    }
}
