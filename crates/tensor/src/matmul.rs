//! Cache-blocked, register-tiled, rayon-parallel matrix multiplication.
//!
//! All three public entry points ([`matmul`], [`matmul_transpose_a`],
//! [`matmul_transpose_b`]) funnel into one GEMM core:
//!
//! * the k dimension is processed in panels of [`KC`] so the active slice of
//!   `b` stays cache-resident;
//! * output is computed in [`MR`]`×`[`NR`] register tiles, accumulated in
//!   fixed-size arrays the compiler keeps in SIMD registers (sized for
//!   baseline SSE2 — wider targets simply use fewer registers);
//! * row blocks of [`MC`] rows are distributed over rayon threads once the
//!   problem passes [`PAR_FLOPS`] (`RAYON_NUM_THREADS` caps the fan-out);
//! * the transpose variants materialise the transposed operand once into a
//!   [`Scratch`] buffer instead of running a strided inner loop.
//!
//! The previous implementation was a scalar ikj loop with a per-element
//! `a[i][p] == 0.0` skip; that branch pessimised the dense case (almost every
//! activation/weight matrix here is dense) and blocked vectorisation, so it
//! is gone. `tests` and `tests/proptests.rs` pin the new core to the naive
//! reference within 1e-5.

use rayon::prelude::*;

use crate::backend::SimdTier;
use crate::{Result, Scratch, Tensor, TensorError};

/// k-panel size: the active `KC × NR` slice of `b` plus `MR × KC` of `a`
/// fit in L1/L2.
const KC: usize = 256;
/// Rows per parallel work unit.
const MC: usize = 64;
/// Minimum `2·m·k·n` before the row loop fans out over rayon.
const PAR_FLOPS: usize = 1 << 20;

fn dims2(t: &Tensor) -> Result<(usize, usize)> {
    if t.shape().rank() != 2 {
        return Err(TensorError::RankMismatch {
            expected: 2,
            actual: t.shape().rank(),
        });
    }
    Ok((t.shape().dim(0), t.shape().dim(1)))
}

/// Fused or separate multiply-add, chosen at compile time per kernel
/// instantiation. Every kernel tier instantiates with `FMA = true`:
/// `mul_add` is a single correctly-rounded operation on every lowering —
/// `vfmadd` under the AVX2+FMA target feature, `fmla` on AArch64, libm's
/// `fmaf` on baseline x86-64 — so the scalar and vectorised tiers produce
/// **bit-identical** results (the per-element accumulation order is already
/// tile-shape independent). The libm fallback makes the forced-scalar tier
/// slower on baseline x86-64, which is the accepted price for cross-tier
/// byte-identity of every artifact. `FMA = false` is kept for reference
/// kernels that must reproduce unfused seed arithmetic.
#[inline(always)]
pub(crate) fn madd<const FMA: bool>(acc: f32, a: f32, b: f32) -> f32 {
    if FMA {
        a.mul_add(b, acc)
    } else {
        acc + a * b
    }
}

/// Micro-kernel: accumulates an `MR × NR` register tile over one packed
/// k-panel. Both operands are packed — `a_pack` holds the current row
/// group column-interleaved (`kc × MR`), `b_tile` the current j-tile
/// (`kc × NR`) — so the inner loop runs off two streaming pointers with no
/// strided or multi-base addressing. Rows/columns past the matrix edge are
/// zero-padded in the packs; the writeback clips to `mr × nb`, so full-speed
/// tiles and ragged edges share this one kernel.
#[allow(clippy::too_many_arguments)]
#[inline(always)]
fn tile<const MR: usize, const NR: usize, const FMA: bool>(
    out: &mut [f32],
    a_pack: &[f32],
    b_tile: &[f32],
    i: usize,
    mr: usize,
    j: usize,
    nb: usize,
    kc: usize,
    n: usize,
) {
    let mut acc = [[0.0f32; NR]; MR];
    for (a_col, b_row) in a_pack
        .chunks_exact(MR)
        .zip(b_tile.chunks_exact(NR))
        .take(kc)
    {
        // Fixed-size views let the compiler keep the tile in registers.
        let a_col: &[f32; MR] = a_col.try_into().expect("MR-sized packed column");
        let b_row: &[f32; NR] = b_row.try_into().expect("NR-sized packed row");
        for r in 0..MR {
            for c in 0..NR {
                acc[r][c] = madd::<FMA>(acc[r][c], a_col[r], b_row[c]);
            }
        }
    }
    for r in 0..mr {
        let out_row = &mut out[(i + r) * n + j..(i + r) * n + j + nb];
        for (o, &v) in out_row.iter_mut().zip(acc[r].iter()) {
            *o += v;
        }
    }
}

/// Packs the `kc × n` panel of `b` starting at row `kk` into j-tiles of
/// width `NR`: tile t holds rows `kk..kk+kc` of columns `t·NR..t·NR+NR`
/// contiguously (zero-padded to `NR` on the ragged right edge).
#[inline(always)]
fn pack_b_panel<const NR: usize>(pack: &mut [f32], b: &[f32], kk: usize, kc: usize, n: usize) {
    let tiles = n.div_ceil(NR);
    for t in 0..tiles {
        let j = t * NR;
        let nb = NR.min(n - j);
        let tile = &mut pack[t * kc * NR..(t + 1) * kc * NR];
        for (step, dst) in tile.chunks_exact_mut(NR).enumerate() {
            let src = &b[(kk + step) * n + j..(kk + step) * n + j + nb];
            dst[..nb].copy_from_slice(src);
            dst[nb..].fill(0.0);
        }
    }
}

/// Largest row-group height any kernel instantiation uses; sizes the
/// stack-allocated A pack.
const MR_MAX: usize = 8;

/// A virtual row-major `A` operand for the GEMM core.
///
/// `fill` writes row `i`'s k-segment `[kk, kk + dst.len())` into `dst`.
/// Besides the plain slice adapter ([`SliceRows`]), convolution implements
/// this over the *image itself* — the im2col patch rows are generated
/// panel-by-panel straight into the (L1-resident) pack buffers instead of
/// being materialized into an `[N·OH·OW, C·KH·KW]` matrix that is written
/// once and immediately re-read (see `conv::Im2colRows`). Generated values
/// are identical to the materialized ones and the accumulation order is
/// untouched, so results are bit-identical either way.
pub(crate) trait ARows: Sync {
    /// Writes row `i`, columns `[kk, kk + dst.len())`, into `dst`.
    fn fill(&self, i: usize, kk: usize, dst: &mut [f32]);
}

/// The ordinary materialized `A` operand.
pub(crate) struct SliceRows<'a> {
    a: &'a [f32],
    k: usize,
}

impl ARows for SliceRows<'_> {
    #[inline(always)]
    fn fill(&self, i: usize, kk: usize, dst: &mut [f32]) {
        let start = i * self.k + kk;
        dst.copy_from_slice(&self.a[start..start + dst.len()]);
    }
}

/// Computes `out += A · b` for one block of `m` rows (sequential), blocked
/// over packed k-panels and `MR × NR` register tiles. `i0` is the absolute
/// index of the block's first row in the virtual `A` operand.
#[allow(clippy::too_many_arguments)]
#[inline(always)]
fn gemm_rows_tiled<const MR: usize, const NR: usize, const FMA: bool, S: ARows>(
    out: &mut [f32],
    a_src: &S,
    i0: usize,
    b: &[f32],
    b_pack: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
) {
    let b_pack = &mut b_pack[..KC.min(k) * n.div_ceil(NR) * NR];
    let mut a_pack = [0.0f32; MR_MAX * KC];
    let mut row_buf = [0.0f32; KC];
    let mut kk = 0;
    while kk < k {
        let kc = KC.min(k - kk);
        pack_b_panel::<NR>(b_pack, b, kk, kc, n);
        let mut i = 0;
        while i < m {
            let mr = MR.min(m - i);
            // Pack the row group column-interleaved; rows past `m` stay the
            // zeros written when the group narrows.
            if mr < MR {
                a_pack[..kc * MR].fill(0.0);
            }
            for r in 0..mr {
                a_src.fill(i0 + i + r, kk, &mut row_buf[..kc]);
                for (step, &v) in row_buf[..kc].iter().enumerate() {
                    a_pack[step * MR + r] = v;
                }
            }
            let mut j = 0;
            let mut t = 0;
            while j < n {
                let nb = NR.min(n - j);
                tile::<MR, NR, FMA>(
                    out,
                    &a_pack[..kc * MR],
                    &b_pack[t * kc * NR..(t + 1) * kc * NR],
                    i,
                    mr,
                    j,
                    nb,
                    kc,
                    n,
                );
                j += NR;
                t += 1;
            }
            i += mr;
        }
        kk += kc;
    }
}

/// AVX2+FMA instantiation: 4×16 tile = 8 ymm accumulators, `mul_add`
/// contracts to `vfmadd`. The `#[target_feature]` lets LLVM vectorise this
/// body for AVX2 even though the crate is compiled for baseline x86-64;
/// callers must verify support at runtime (see [`gemm_rows`]).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
#[allow(clippy::too_many_arguments)]
unsafe fn gemm_rows_avx2<S: ARows>(
    out: &mut [f32],
    a_src: &S,
    i0: usize,
    b: &[f32],
    b_pack: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
) {
    gemm_rows_tiled::<4, 16, true, S>(out, a_src, i0, b, b_pack, m, k, n);
}

/// AVX2+FMA narrow-output instantiation for `n ≤ 8`: an 8×8 tile keeps
/// eight single-ymm accumulator rows live instead of wasting half of every
/// 16-wide tile on zero padding. Conv layers with few filters (and their
/// `g · W` input-gradient GEMMs, where `n` is the filter count) hit this
/// constantly. Per-element accumulation order (sequential over k) is
/// unchanged, so results are bit-identical to the wide kernel.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
#[allow(clippy::too_many_arguments)]
unsafe fn gemm_rows_avx2_narrow<S: ARows>(
    out: &mut [f32],
    a_src: &S,
    i0: usize,
    b: &[f32],
    b_pack: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
) {
    gemm_rows_tiled::<8, 8, true, S>(out, a_src, i0, b, b_pack, m, k, n);
}

/// Dispatches one row block through the caller's pre-resolved kernel tier.
///
/// CPU-feature detection is *not* performed here: `tier` was fixed once at
/// backend construction ([`SimdTier::detect`] / `CpuBackend::with_tier`),
/// so the hot path carries no per-call feature queries. Both tiers are
/// bit-identical — see [`madd`].
///
/// (An AVX-512 32-wide variant was measured and rejected: LLVM's
/// autovectoriser keeps 256-bit preferred vector width, so the wider tile
/// spills instead of using zmm registers.)
#[allow(clippy::too_many_arguments)]
fn gemm_rows<S: ARows>(
    tier: SimdTier,
    out: &mut [f32],
    a_src: &S,
    i0: usize,
    b: &[f32],
    m: usize,
    k: usize,
    n: usize,
) {
    // Per-thread pack buffer: reused across calls so the packing step costs
    // one panel copy, not an allocation + zero-fill per call. (Deliberately
    // not the shared `Scratch` pool — this runs inside rayon workers while a
    // caller may already hold the thread-local scratch borrow. Sized for the
    // widest kernel's NR so every path fits.)
    thread_local! {
        static B_PACK: std::cell::RefCell<Vec<f32>> =
            const { std::cell::RefCell::new(Vec::new()) };
    }
    B_PACK.with(|cell| {
        let mut pack = cell.borrow_mut();
        let needed = KC.min(k) * n.div_ceil(16) * 16;
        if pack.len() < needed {
            pack.resize(needed, 0.0);
        }
        match tier {
            #[cfg(target_arch = "x86_64")]
            SimdTier::Avx2Fma => {
                // SAFETY: an Avx2Fma tier is only ever constructed after
                // runtime verification that the CPU supports AVX2+FMA
                // (SimdTier::detect / CpuBackend::with_tier clamping).
                if n <= 8 {
                    unsafe { gemm_rows_avx2_narrow(out, a_src, i0, b, &mut pack, m, k, n) };
                } else {
                    unsafe { gemm_rows_avx2(out, a_src, i0, b, &mut pack, m, k, n) };
                }
            }
            // Portable scalar tier (and the only arm on non-x86 targets):
            // a 4×8 tile keeps the accumulators within the 16 SSE2
            // registers; FMA=true keeps it bit-identical to the AVX2 tier.
            _ => gemm_rows_tiled::<4, 8, true, S>(out, a_src, i0, b, &mut pack, m, k, n),
        }
    });
}

/// Dense GEMM into a caller-provided buffer: `out = a (m×k) · b (k×n)`,
/// dispatched through the pre-resolved `tier`.
///
/// `out` is overwritten (it does not need to be zeroed). Row blocks run in
/// parallel once the problem is large enough to amortise the fan-out.
pub(crate) fn gemm_into(
    tier: SimdTier,
    out: &mut [f32],
    a: &[f32],
    b: &[f32],
    m: usize,
    k: usize,
    n: usize,
) {
    debug_assert_eq!(a.len(), m * k);
    gemm_into_src(tier, out, &SliceRows { a, k }, b, m, k, n);
}

/// [`gemm_into`] over a virtual `A` operand: `out = A (m×k) · b (k×n)` with
/// `A` rows produced on demand by `a_src` (either a plain slice or a fused
/// im2col generator).
pub(crate) fn gemm_into_src<S: ARows>(
    tier: SimdTier,
    out: &mut [f32],
    a_src: &S,
    b: &[f32],
    m: usize,
    k: usize,
    n: usize,
) {
    debug_assert_eq!(out.len(), m * n);
    debug_assert_eq!(b.len(), k * n);
    out.fill(0.0);
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    let flops = 2usize.saturating_mul(m).saturating_mul(k).saturating_mul(n);
    if flops < PAR_FLOPS || rayon::current_num_threads() <= 1 || m <= MC {
        gemm_rows(tier, out, a_src, 0, b, m, k, n);
        return;
    }
    out.par_chunks_mut(MC * n)
        .enumerate()
        .for_each(|(blk, out_block)| {
            let i0 = blk * MC;
            let rows = out_block.len() / n;
            gemm_rows(tier, out_block, a_src, i0, b, rows, k, n);
        });
}

/// Transposes `src` (`rows × cols`, row-major) into `dst` (`cols × rows`).
pub(crate) fn transpose_into(dst: &mut [f32], src: &[f32], rows: usize, cols: usize) {
    debug_assert_eq!(dst.len(), rows * cols);
    debug_assert_eq!(src.len(), rows * cols);
    // Block for cache friendliness on both sides.
    const B: usize = 32;
    let mut r0 = 0;
    while r0 < rows {
        let r1 = (r0 + B).min(rows);
        let mut c0 = 0;
        while c0 < cols {
            let c1 = (c0 + B).min(cols);
            for r in r0..r1 {
                for c in c0..c1 {
                    dst[c * rows + r] = src[r * cols + c];
                }
            }
            c0 = c1;
        }
        r0 = r1;
    }
}

/// Dense matrix product `a (m×k) · b (k×n) → (m×n)`.
///
/// This is the hot path for every convolution (via im2col) and dense layer
/// in the workspace; see the module docs for the blocking scheme.
///
/// # Errors
///
/// Returns an error if either argument is not rank 2 or the inner
/// dimensions disagree.
pub fn matmul(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    matmul_t(SimdTier::detect(), a, b)
}

/// [`matmul`] dispatched through an explicit kernel tier (backend entry).
pub(crate) fn matmul_t(tier: SimdTier, a: &Tensor, b: &Tensor) -> Result<Tensor> {
    let (m, k) = dims2(a)?;
    let (k2, n) = dims2(b)?;
    if k != k2 {
        return Err(TensorError::MatmulDimMismatch {
            left_cols: k,
            right_rows: k2,
        });
    }
    let mut out = vec![0.0f32; m * n];
    gemm_into(tier, &mut out, a.data(), b.data(), m, k, n);
    Tensor::from_vec(out, &[m, n])
}

/// Computes `aᵀ (k×m) · b (k×n) → (m×n)` without materialising the transpose
/// in the caller — internally `aᵀ` is packed once into a scratch buffer so
/// the GEMM core runs at full stride-1 speed.
///
/// # Errors
///
/// Returns an error if either argument is not rank 2 or the shared leading
/// dimension disagrees.
pub fn matmul_transpose_a(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    matmul_transpose_a_t(SimdTier::detect(), a, b)
}

/// [`matmul_transpose_a`] dispatched through an explicit kernel tier
/// (backend entry). The transpose workspace comes from the thread-local
/// scratch pool; only buffer memory is drawn from it — dispatch follows
/// `tier`.
pub(crate) fn matmul_transpose_a_t(tier: SimdTier, a: &Tensor, b: &Tensor) -> Result<Tensor> {
    let (k, m) = dims2(a)?;
    let (k2, n) = dims2(b)?;
    if k != k2 {
        return Err(TensorError::MatmulDimMismatch {
            left_cols: k,
            right_rows: k2,
        });
    }
    let mut out = vec![0.0f32; m * n];
    Scratch::with_thread_local(|scratch| {
        let mut at = scratch.take_dirty(m * k);
        transpose_into(&mut at, a.data(), k, m);
        gemm_into(tier, &mut out, &at, b.data(), m, k, n);
        scratch.put(at);
    });
    Tensor::from_vec(out, &[m, n])
}

/// Computes `a (m×k) · bᵀ (n×k) → (m×n)`; `bᵀ` is packed once into a scratch
/// buffer so the GEMM core runs at full stride-1 speed.
///
/// # Errors
///
/// Returns an error if either argument is not rank 2 or the shared trailing
/// dimension disagrees.
pub fn matmul_transpose_b(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    Scratch::with_thread_local(|scratch| matmul_transpose_b_with_scratch(a, b, scratch))
}

/// [`matmul_transpose_b`] with an explicit workspace pool for the packed
/// `bᵀ`, for callers that already hold a [`Scratch`] (layer inference paths
/// must not re-enter the shared thread-local pool).
///
/// # Errors
///
/// Returns an error if either argument is not rank 2 or the shared trailing
/// dimension disagrees.
pub fn matmul_transpose_b_with_scratch(
    a: &Tensor,
    b: &Tensor,
    scratch: &mut Scratch,
) -> Result<Tensor> {
    matmul_transpose_b_with_scratch_t(scratch.tier(), a, b, scratch)
}

/// [`matmul_transpose_b_with_scratch`] dispatched through an explicit
/// kernel tier (backend entry) — the scratch supplies buffers only.
pub(crate) fn matmul_transpose_b_with_scratch_t(
    tier: SimdTier,
    a: &Tensor,
    b: &Tensor,
    scratch: &mut Scratch,
) -> Result<Tensor> {
    let (m, k) = dims2(a)?;
    let (n, k2) = dims2(b)?;
    if k != k2 {
        return Err(TensorError::MatmulDimMismatch {
            left_cols: k,
            right_rows: k2,
        });
    }
    let mut out = vec![0.0f32; m * n];
    let mut bt = scratch.take_dirty(k * n);
    transpose_into(&mut bt, b.data(), n, k);
    gemm_into(tier, &mut out, a.data(), &bt, m, k, n);
    scratch.put(bt);
    Tensor::from_vec(out, &[m, n])
}

/// Straightforward reference implementations kept for equivalence tests and
/// benchmark baselines. These mirror the pre-optimisation seed code (scalar
/// ikj loop with the zero-skip branch) and must never be used on hot paths.
pub mod reference {
    use super::dims2;
    use crate::{Result, Tensor, TensorError};

    /// The seed `matmul`: scalar ikj loop with a per-element zero skip.
    ///
    /// # Errors
    ///
    /// Same contract as [`super::matmul`].
    pub fn matmul_naive(a: &Tensor, b: &Tensor) -> Result<Tensor> {
        let (m, k) = dims2(a)?;
        let (k2, n) = dims2(b)?;
        if k != k2 {
            return Err(TensorError::MatmulDimMismatch {
                left_cols: k,
                right_rows: k2,
            });
        }
        let a_data = a.data();
        let b_data = b.data();
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            let a_row = &a_data[i * k..(i + 1) * k];
            let out_row = &mut out[i * n..(i + 1) * n];
            for (p, &a_ip) in a_row.iter().enumerate() {
                if a_ip == 0.0 {
                    continue;
                }
                let b_row = &b_data[p * n..(p + 1) * n];
                for (o, &b_pj) in out_row.iter_mut().zip(b_row.iter()) {
                    *o += a_ip * b_pj;
                }
            }
        }
        Tensor::from_vec(out, &[m, n])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn naive(a: &Tensor, b: &Tensor) -> Tensor {
        let (m, k) = (a.dims()[0], a.dims()[1]);
        let n = b.dims()[1];
        let mut out = Tensor::zeros(&[m, n]);
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0;
                for p in 0..k {
                    acc += a.get(&[i, p]).unwrap() * b.get(&[p, j]).unwrap();
                }
                out.set(&[i, j], acc).unwrap();
            }
        }
        out
    }

    fn transpose(t: &Tensor) -> Tensor {
        let (r, c) = (t.dims()[0], t.dims()[1]);
        let mut out = Tensor::zeros(&[c, r]);
        for i in 0..r {
            for j in 0..c {
                out.set(&[j, i], t.get(&[i, j]).unwrap()).unwrap();
            }
        }
        out
    }

    #[test]
    fn small_known_product() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]).unwrap();
        let b = Tensor::from_vec(vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0], &[3, 2]).unwrap();
        let c = matmul(&a, &b).unwrap();
        assert_eq!(c.dims(), &[2, 2]);
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matches_naive_on_random_matrices() {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let a = Tensor::rand_uniform(&[7, 5], -1.0, 1.0, &mut rng);
        let b = Tensor::rand_uniform(&[5, 9], -1.0, 1.0, &mut rng);
        let fast = matmul(&a, &b).unwrap();
        let slow = naive(&a, &b);
        for (x, y) in fast.data().iter().zip(slow.data().iter()) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn matches_naive_across_blocking_boundaries() {
        // Sizes straddling the MR/NR/KC/MC tile edges, including k > KC and
        // m > MC so the panel loop and (on multicore) the parallel split run.
        let mut rng = ChaCha8Rng::seed_from_u64(17);
        for &(m, k, n) in &[
            (1usize, 1usize, 1usize),
            (3, 5, 7),
            (4, 8, 8),
            (5, 9, 17),
            (65, 300, 33),
            (130, 70, 40),
        ] {
            let a = Tensor::rand_uniform(&[m, k], -1.0, 1.0, &mut rng);
            let b = Tensor::rand_uniform(&[k, n], -1.0, 1.0, &mut rng);
            let fast = matmul(&a, &b).unwrap();
            let slow = reference::matmul_naive(&a, &b).unwrap();
            for (x, y) in fast.data().iter().zip(slow.data().iter()) {
                assert!(
                    (x - y).abs() < 1e-4 * (1.0 + y.abs()),
                    "({m},{k},{n}): {x} vs {y}"
                );
            }
        }
    }

    #[test]
    fn transpose_variants_match_explicit_transpose() {
        let mut rng = ChaCha8Rng::seed_from_u64(13);
        let a = Tensor::rand_uniform(&[6, 4], -1.0, 1.0, &mut rng);
        let b = Tensor::rand_uniform(&[6, 3], -1.0, 1.0, &mut rng);
        let expected = matmul(&transpose(&a), &b).unwrap();
        let got = matmul_transpose_a(&a, &b).unwrap();
        for (x, y) in got.data().iter().zip(expected.data().iter()) {
            assert!((x - y).abs() < 1e-5);
        }

        let c = Tensor::rand_uniform(&[4, 5], -1.0, 1.0, &mut rng);
        let d = Tensor::rand_uniform(&[7, 5], -1.0, 1.0, &mut rng);
        let expected = matmul(&c, &transpose(&d)).unwrap();
        let got = matmul_transpose_b(&c, &d).unwrap();
        for (x, y) in got.data().iter().zip(expected.data().iter()) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn zero_rows_and_columns_stay_exact() {
        // The seed implementation skipped a == 0.0 entries; the blocked core
        // must produce identical results on sparse-ish inputs too.
        let mut rng = ChaCha8Rng::seed_from_u64(23);
        let mut a = Tensor::rand_uniform(&[12, 20], -1.0, 1.0, &mut rng);
        for v in a.data_mut().iter_mut().step_by(3) {
            *v = 0.0;
        }
        let b = Tensor::rand_uniform(&[20, 10], -1.0, 1.0, &mut rng);
        let fast = matmul(&a, &b).unwrap();
        let slow = reference::matmul_naive(&a, &b).unwrap();
        for (x, y) in fast.data().iter().zip(slow.data().iter()) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn dimension_errors() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[4, 2]);
        assert!(matches!(
            matmul(&a, &b),
            Err(TensorError::MatmulDimMismatch { .. })
        ));
        let v = Tensor::zeros(&[3]);
        assert!(matches!(
            matmul(&v, &b),
            Err(TensorError::RankMismatch { .. })
        ));
        assert!(matmul_transpose_a(&v, &b).is_err());
        assert!(matmul_transpose_b(&a, &v).is_err());
        assert!(matches!(
            matmul_transpose_a(&Tensor::zeros(&[3, 2]), &Tensor::zeros(&[4, 2])),
            Err(TensorError::MatmulDimMismatch { .. })
        ));
        assert!(matches!(
            matmul_transpose_b(&Tensor::zeros(&[3, 2]), &Tensor::zeros(&[4, 3])),
            Err(TensorError::MatmulDimMismatch { .. })
        ));
    }
}
