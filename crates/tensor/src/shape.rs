use serde::{Deserialize, Serialize};

use crate::TensorError;

/// Computes the product of `dims` with overflow checking.
///
/// Size arithmetic on caller-supplied dimensions (workspace lengths,
/// `input_dims` handed to gradient entry points) goes through here so a
/// hostile or corrupted shape surfaces as
/// [`TensorError::SizeOverflow`] instead of a wrapped allocation size.
pub(crate) fn checked_volume(dims: &[usize]) -> Result<usize, TensorError> {
    dims.iter()
        .try_fold(1usize, |acc, &d| acc.checked_mul(d))
        .ok_or_else(|| TensorError::SizeOverflow {
            dims: dims.to_vec(),
        })
}

/// A tensor shape: the extent of every dimension, outermost first.
///
/// Shapes are stored row-major; for image batches the convention across the
/// workspace is `[N, C, H, W]`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Shape(Vec<usize>);

impl Shape {
    /// Creates a shape from a slice of dimension extents.
    pub fn new(dims: &[usize]) -> Self {
        Shape(dims.to_vec())
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.0.len()
    }

    /// The dimension extents.
    pub fn dims(&self) -> &[usize] {
        &self.0
    }

    /// Total number of elements implied by the shape.
    pub fn volume(&self) -> usize {
        self.0.iter().product()
    }

    /// Extent of dimension `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.rank()`.
    pub fn dim(&self, i: usize) -> usize {
        self.0[i]
    }

    /// Returns the row-major strides for this shape.
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1usize; self.0.len()];
        for i in (0..self.0.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.0[i + 1];
        }
        strides
    }

    /// Converts a multi-dimensional index to a flat row-major offset.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] if the index rank differs from
    /// the shape rank, and [`TensorError::IndexOutOfBounds`] if any index
    /// exceeds its dimension.
    pub fn flat_index(&self, index: &[usize]) -> Result<usize, TensorError> {
        if index.len() != self.0.len() {
            return Err(TensorError::RankMismatch {
                expected: self.0.len(),
                actual: index.len(),
            });
        }
        let mut flat = 0usize;
        let strides = self.strides();
        for (i, (&idx, &dim)) in index.iter().zip(self.0.iter()).enumerate() {
            if idx >= dim {
                return Err(TensorError::IndexOutOfBounds {
                    index: idx,
                    len: dim,
                });
            }
            flat += idx * strides[i];
        }
        Ok(flat)
    }

    /// Checks that two shapes are identical.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when they differ.
    pub fn ensure_same(&self, other: &Shape) -> Result<(), TensorError> {
        if self != other {
            return Err(TensorError::ShapeMismatch {
                left: self.0.clone(),
                right: other.0.clone(),
            });
        }
        Ok(())
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape::new(dims)
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Shape(dims)
    }
}

impl std::fmt::Display for Shape {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:?}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn volume_and_rank() {
        let s = Shape::new(&[2, 3, 4]);
        assert_eq!(s.rank(), 3);
        assert_eq!(s.volume(), 24);
        assert_eq!(s.dims(), &[2, 3, 4]);
    }

    #[test]
    fn strides_row_major() {
        let s = Shape::new(&[2, 3, 4]);
        assert_eq!(s.strides(), vec![12, 4, 1]);
    }

    #[test]
    fn flat_index_roundtrip() {
        let s = Shape::new(&[2, 3, 4]);
        assert_eq!(s.flat_index(&[1, 2, 3]).unwrap(), 23);
        assert_eq!(s.flat_index(&[0, 0, 0]).unwrap(), 0);
    }

    #[test]
    fn flat_index_errors() {
        let s = Shape::new(&[2, 3]);
        assert!(matches!(
            s.flat_index(&[1]),
            Err(TensorError::RankMismatch { .. })
        ));
        assert!(matches!(
            s.flat_index(&[2, 0]),
            Err(TensorError::IndexOutOfBounds { .. })
        ));
    }

    #[test]
    fn ensure_same_detects_mismatch() {
        let a = Shape::new(&[2, 3]);
        let b = Shape::new(&[3, 2]);
        assert!(a.ensure_same(&a.clone()).is_ok());
        assert!(a.ensure_same(&b).is_err());
    }

    #[test]
    fn empty_shape_is_scalar_like() {
        let s = Shape::new(&[]);
        assert_eq!(s.volume(), 1);
        assert_eq!(s.rank(), 0);
    }
}
