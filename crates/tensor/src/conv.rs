use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use crate::backend::SimdTier;
use crate::matmul::{gemm_into, gemm_into_src, transpose_into, ARows};
use crate::shape::checked_volume;
use crate::{Result, Scratch, Tensor, TensorError};

/// Work (in multiply-adds) below which spatial loops stay sequential;
/// thread fan-out costs more than it saves under this.
const PAR_WORK: usize = 1 << 16;

/// Stride and zero-padding configuration for convolution and pooling.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ConvSpec {
    /// Stride applied to both spatial dimensions.
    pub stride: usize,
    /// Zero padding applied symmetrically to both spatial dimensions.
    pub padding: usize,
}

impl ConvSpec {
    /// Creates a spec with the given stride and padding.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidSpec`] when `stride == 0`.
    pub fn new(stride: usize, padding: usize) -> Result<Self> {
        if stride == 0 {
            return Err(TensorError::InvalidSpec("stride must be non-zero".into()));
        }
        Ok(ConvSpec { stride, padding })
    }

    /// A unit-stride spec whose padding keeps the spatial size unchanged
    /// ("same" convolution). Only odd kernels admit a symmetric "same"
    /// padding; even kernels are rejected instead of silently producing an
    /// output one pixel short.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidSpec`] when `kernel` is zero or even.
    pub fn same(kernel: usize) -> Result<Self> {
        if kernel == 0 || kernel.is_multiple_of(2) {
            return Err(TensorError::InvalidSpec(format!(
                "\"same\" convolution requires an odd kernel, got {kernel}"
            )));
        }
        Ok(ConvSpec {
            stride: 1,
            padding: kernel / 2,
        })
    }

    /// A unit-stride, zero-padding ("valid") spec.
    pub fn valid() -> Self {
        ConvSpec {
            stride: 1,
            padding: 0,
        }
    }

    /// Output spatial extent for an input extent and kernel extent.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidSpec`] if the kernel does not fit the
    /// padded input, or [`TensorError::SizeOverflow`] when the padded
    /// extent itself overflows `usize` (possible with untrusted recorded
    /// `input_dims`).
    pub fn output_extent(&self, input: usize, kernel: usize) -> Result<usize> {
        let padded = self
            .padding
            .checked_mul(2)
            .and_then(|p| input.checked_add(p))
            .ok_or(TensorError::SizeOverflow {
                dims: vec![input, self.padding],
            })?;
        if kernel == 0 || kernel > padded {
            return Err(TensorError::InvalidSpec(format!(
                "kernel {kernel} does not fit padded input {padded}"
            )));
        }
        Ok((padded - kernel) / self.stride + 1)
    }
}

impl Default for ConvSpec {
    fn default() -> Self {
        ConvSpec {
            stride: 1,
            padding: 0,
        }
    }
}

fn dims4(t: &Tensor) -> Result<(usize, usize, usize, usize)> {
    if t.shape().rank() != 4 {
        return Err(TensorError::RankMismatch {
            expected: 4,
            actual: t.shape().rank(),
        });
    }
    let d = t.dims();
    Ok((d[0], d[1], d[2], d[3]))
}

/// Output-column split for one spatial row: `[0, interior_lo)` and
/// `[interior_hi, ow)` need per-tap horizontal bounds checks, while every
/// `ox` in `[interior_lo, interior_hi)` keeps the full kernel width inside
/// the image.
fn interior_cols(w: usize, kw: usize, ow: usize, spec: ConvSpec) -> (usize, usize) {
    let lo = spec.padding.div_ceil(spec.stride).min(ow);
    let hi = if w + spec.padding >= kw {
        ((w + spec.padding - kw) / spec.stride + 1).min(ow)
    } else {
        0
    };
    (lo, hi.max(lo))
}

/// Fills one im2col row group (all patches of one input image row `oy` of
/// image `ni`) into `cols`. `cols` rows must be pre-zeroed (padding taps).
///
/// The vertical kernel range is hoisted per call and the output columns are
/// split into border/interior ranges, so the interior — almost every patch —
/// runs without any per-tap bounds arithmetic. The values and write order
/// are exactly those of the naive bounds-checked loop.
#[allow(clippy::too_many_arguments)]
fn im2col_rows(
    cols: &mut [f32],
    data: &[f32],
    ni: usize,
    oy: usize,
    c: usize,
    h: usize,
    w: usize,
    kh: usize,
    kw: usize,
    ow: usize,
    spec: ConvSpec,
) {
    let cols_cols = c * kh * kw;
    let pad = spec.padding as isize;
    let y0 = (oy * spec.stride) as isize - pad;
    // Valid kernel rows for this output row (y = y0 + ky must be in [0, h)).
    let ky_lo = (-y0).max(0) as usize;
    let ky_hi = ((h as isize - y0).min(kh as isize)).max(0) as usize;
    if ky_lo >= ky_hi {
        return;
    }
    let (ilo, ihi) = interior_cols(w, kw, ow, spec);

    let mut border = |ox: usize| {
        let row = ox * cols_cols;
        let x0 = (ox * spec.stride) as isize - pad;
        let x_lo = (-x0).max(0) as usize;
        let x_hi = ((w as isize - x0).min(kw as isize)).max(0) as usize;
        if x_lo >= x_hi {
            return;
        }
        for ci in 0..c {
            let in_base = (ni * c + ci) * h * w;
            let col_base = row + ci * kh * kw;
            for ky in ky_lo..ky_hi {
                let in_row = in_base + (y0 + ky as isize) as usize * w;
                let col_row = col_base + ky * kw;
                // x0 + x_lo >= 0 by construction of x_lo.
                let src_start = in_row + (x0 + x_lo as isize) as usize;
                let src = &data[src_start..src_start + (x_hi - x_lo)];
                cols[col_row + x_lo..col_row + x_hi].copy_from_slice(src);
            }
        }
    };
    for ox in 0..ilo {
        border(ox);
    }
    for ox in ihi..ow {
        border(ox);
    }
    for ox in ilo..ihi {
        let row = ox * cols_cols;
        // Interior: x0 >= 0 and x0 + kw <= w, full-width copies only.
        let x0 = ox * spec.stride - spec.padding;
        for ci in 0..c {
            let in_base = (ni * c + ci) * h * w + x0;
            let col_base = row + ci * kh * kw;
            for ky in ky_lo..ky_hi {
                let src_start = in_base + (y0 + ky as isize) as usize * w;
                cols[col_base + ky * kw..col_base + (ky + 1) * kw]
                    .copy_from_slice(&data[src_start..src_start + kw]);
            }
        }
    }
}

/// Unfolds an `[N, C, H, W]` input into a pre-zeroed `[N*OH*OW, C*KH*KW]`
/// buffer, parallel over image rows.
fn im2col_into(
    input: &Tensor,
    kh: usize,
    kw: usize,
    spec: ConvSpec,
    oh: usize,
    ow: usize,
    cols: &mut [f32],
) {
    let (n, c, h, w) = {
        let d = input.dims();
        (d[0], d[1], d[2], d[3])
    };
    let cols_cols = c * kh * kw;
    let data = input.data();
    let row_group = ow * cols_cols;
    if n * oh * row_group < PAR_WORK || rayon::current_num_threads() <= 1 {
        for ni in 0..n {
            for oy in 0..oh {
                let base = (ni * oh + oy) * row_group;
                im2col_rows(
                    &mut cols[base..base + row_group],
                    data,
                    ni,
                    oy,
                    c,
                    h,
                    w,
                    kh,
                    kw,
                    ow,
                    spec,
                );
            }
        }
    } else {
        cols.par_chunks_mut(row_group)
            .enumerate()
            .for_each(|(g, chunk)| {
                im2col_rows(chunk, data, g / oh, g % oh, c, h, w, kh, kw, ow, spec);
            });
    }
}

/// The fused-im2col `A` operand for the convolution GEMM: patch rows are
/// generated on demand, straight into the GEMM's L1-resident pack buffers,
/// so the `[N·OH·OW, C·KH·KW]` patch matrix is never written to (or read
/// back from) memory. Row values are exactly those [`im2col`] would have
/// materialized, so the GEMM result is bit-identical.
struct Im2colRows<'a> {
    data: &'a [f32],
    c: usize,
    h: usize,
    w: usize,
    kh: usize,
    kw: usize,
    ow: usize,
    hw_out: usize,
    spec: ConvSpec,
}

impl ARows for Im2colRows<'_> {
    fn fill(&self, row: usize, kk: usize, dst: &mut [f32]) {
        let (h, w, kh, kw) = (self.h, self.w, self.kh, self.kw);
        let (ni, rem) = (row / self.hw_out, row % self.hw_out);
        let (oy, ox) = (rem / self.ow, rem % self.ow);
        let pad = self.spec.padding as isize;
        let y0 = (oy * self.spec.stride) as isize - pad;
        let x0 = (ox * self.spec.stride) as isize - pad;
        // Interior fast path: the whole kernel window is inside the image
        // and the whole row was requested — plain stripe copies, no zero
        // fill, no bounds arithmetic. Almost every patch of a typical
        // feature map takes this branch.
        if kk == 0
            && dst.len() == self.c * kh * kw
            && y0 >= 0
            && x0 >= 0
            && (y0 as usize) + kh <= h
            && (x0 as usize) + kw <= w
        {
            let (y0, x0) = (y0 as usize, x0 as usize);
            let mut d = 0;
            for ci in 0..self.c {
                let base = (ni * self.c + ci) * h * w + y0 * w + x0;
                for ky in 0..kh {
                    let src = base + ky * w;
                    dst[d..d + kw].copy_from_slice(&self.data[src..src + kw]);
                    d += kw;
                }
            }
            return;
        }
        dst.fill(0.0);
        let kend = kk + dst.len();
        // Kernel-row stripes (ci, ky) overlapping the requested k-segment.
        let first = kk / kw;
        let last = (kend - 1) / kw;
        for s in first..=last {
            let (ci, ky) = (s / kh, s % kh);
            let y = y0 + ky as isize;
            if y < 0 || y >= h as isize {
                continue;
            }
            let s_base = s * kw;
            // Intersection of the stripe with the segment and the image.
            let seg_lo = kk.max(s_base) - s_base;
            let seg_hi = kend.min(s_base + kw) - s_base;
            let x_lo = seg_lo.max((-x0).max(0) as usize);
            let x_hi = seg_hi.min(((w as isize - x0).min(kw as isize)).max(0) as usize);
            if x_lo >= x_hi {
                continue;
            }
            // x0 + x_lo >= 0 by construction of x_lo.
            let src_start =
                (ni * self.c + ci) * h * w + y as usize * w + (x0 + x_lo as isize) as usize;
            dst[s_base + x_lo - kk..s_base + x_hi - kk]
                .copy_from_slice(&self.data[src_start..src_start + (x_hi - x_lo)]);
        }
    }
}

/// Unfolds an `[N, C, H, W]` input into an `[N*OH*OW, C*KH*KW]` patch matrix.
///
/// Out-of-bounds (padding) locations contribute zeros.
///
/// # Errors
///
/// Returns an error if the input is not rank 4 or the kernel does not fit.
pub fn im2col(input: &Tensor, kh: usize, kw: usize, spec: ConvSpec) -> Result<Tensor> {
    let (n, c, h, w) = dims4(input)?;
    let oh = spec.output_extent(h, kh)?;
    let ow = spec.output_extent(w, kw)?;
    let mut cols = vec![0.0f32; n * oh * ow * c * kh * kw];
    im2col_into(input, kh, kw, spec, oh, ow, &mut cols);
    Tensor::from_vec(cols, &[n * oh * ow, c * kh * kw])
}

/// Folds an `[N*OH*OW, C*KH*KW]` patch matrix back into an `[N, C, H, W]`
/// tensor by scatter-adding overlapping patches (the adjoint of [`im2col`]).
/// Parallel over output planes — each `(image, channel)` plane gathers only
/// its own column entries, so there are no write conflicts.
///
/// # Errors
///
/// Returns an error if the column matrix shape is inconsistent with the
/// target dimensions and spec.
pub fn col2im(
    cols: &Tensor,
    input_dims: &[usize],
    kh: usize,
    kw: usize,
    spec: ConvSpec,
) -> Result<Tensor> {
    if input_dims.len() != 4 {
        return Err(TensorError::RankMismatch {
            expected: 4,
            actual: input_dims.len(),
        });
    }
    let (n, c, h, w) = (input_dims[0], input_dims[1], input_dims[2], input_dims[3]);
    let oh = spec.output_extent(h, kh)?;
    let ow = spec.output_extent(w, kw)?;
    let cols_rows = checked_volume(&[n, oh, ow])?;
    let cols_cols = checked_volume(&[c, kh, kw])?;
    if cols.dims() != [cols_rows, cols_cols] {
        return Err(TensorError::ShapeMismatch {
            left: cols.dims().to_vec(),
            right: vec![cols_rows, cols_cols],
        });
    }
    let mut out = vec![0.0f32; checked_volume(input_dims)?];
    let data = cols.data();
    let pad = spec.padding as isize;

    // The exact adjoint of `im2col_rows`: the same kernel-row stripes, with
    // `+=` instead of a copy, the vertical kernel range hoisted per output
    // row and the horizontal bounds hoisted out of the interior columns.
    // `ox` stays ascending and each stripe adds in (ky, kx) order, so the
    // per-element accumulation order — and therefore every bit of the
    // result — matches the per-pixel gather this replaces.
    let plane = |pi: usize, out_plane: &mut [f32]| {
        let (ni, ci) = (pi / c, pi % c);
        let (ilo, ihi) = interior_cols(w, kw, ow, spec);
        for oy in 0..oh {
            let y0 = (oy * spec.stride) as isize - pad;
            let ky_lo = (-y0).max(0) as usize;
            let ky_hi = ((h as isize - y0).min(kh as isize)).max(0) as usize;
            if ky_lo >= ky_hi {
                continue;
            }
            let row_base = (ni * oh + oy) * ow;
            let border = |ox: usize, out_plane: &mut [f32]| {
                let x0 = (ox * spec.stride) as isize - pad;
                let col_base = (row_base + ox) * cols_cols + ci * kh * kw;
                let x_lo = (-x0).max(0) as usize;
                let x_hi = ((w as isize - x0).min(kw as isize)).max(0) as usize;
                if x_lo >= x_hi {
                    return;
                }
                for ky in ky_lo..ky_hi {
                    // x0 + x_lo >= 0 by construction of x_lo.
                    let out_start = (y0 + ky as isize) as usize * w + (x0 + x_lo as isize) as usize;
                    let col_row = col_base + ky * kw;
                    let dst = &mut out_plane[out_start..out_start + (x_hi - x_lo)];
                    let src = &data[col_row + x_lo..col_row + x_hi];
                    for (o, &v) in dst.iter_mut().zip(src) {
                        *o += v;
                    }
                }
            };
            for ox in 0..ilo {
                border(ox, out_plane);
            }
            for ox in ilo..ihi {
                let x0 = ox * spec.stride - spec.padding;
                let col_base = (row_base + ox) * cols_cols + ci * kh * kw;
                for ky in ky_lo..ky_hi {
                    let out_start = (y0 + ky as isize) as usize * w + x0;
                    let col_row = col_base + ky * kw;
                    let dst = &mut out_plane[out_start..out_start + kw];
                    let src = &data[col_row..col_row + kw];
                    for (o, &v) in dst.iter_mut().zip(src) {
                        *o += v;
                    }
                }
            }
            for ox in ihi..ow {
                border(ox, out_plane);
            }
        }
    };

    if cols_rows * cols_cols < PAR_WORK || rayon::current_num_threads() <= 1 {
        for (pi, out_plane) in out.chunks_mut(h * w).enumerate() {
            plane(pi, out_plane);
        }
    } else {
        out.par_chunks_mut(h * w)
            .enumerate()
            .for_each(|(pi, p)| plane(pi, p));
    }
    Tensor::from_vec(out, input_dims)
}

/// Gradients produced by [`conv2d_backward`].
#[derive(Debug, Clone)]
pub struct Conv2dGrads {
    /// Gradient with respect to the convolution input.
    pub d_input: Tensor,
    /// Gradient with respect to the filter weights.
    pub d_weight: Tensor,
    /// Gradient with respect to the bias (one entry per output channel).
    pub d_bias: Tensor,
}

/// Standard 2-D convolution.
///
/// * `input`:  `[N, C, H, W]`
/// * `weight`: `[F, C, KH, KW]`
/// * `bias`:   optional `[F]`
///
/// Returns `[N, F, OH, OW]`. Uses this thread's shared [`Scratch`] pool;
/// call [`conv2d_with_scratch`] to control workspace reuse explicitly.
///
/// # Errors
///
/// Returns an error on rank/shape mismatches or if the kernel does not fit
/// the padded input.
pub fn conv2d(
    input: &Tensor,
    weight: &Tensor,
    bias: Option<&Tensor>,
    spec: ConvSpec,
) -> Result<Tensor> {
    Scratch::with_thread_local(|scratch| conv2d_with_scratch(input, weight, bias, spec, scratch))
}

/// Convolution filter weights pre-transposed into the layout the GEMM core
/// consumes: `[C·KH·KW, F]`, i.e. `Wᵀ` of the `[F, C·KH·KW]` filter matrix.
///
/// [`conv2d_with_scratch`] re-derives this layout on every call; packing it
/// once with [`PackedConvWeights::pack`] and running
/// [`conv2d_prepacked`] amortises the transpose across every forward pass
/// that shares the weights — the batch-inference engine packs each layer
/// once and shares the pack read-only across batch shards and calls.
#[derive(Debug, Clone)]
pub struct PackedConvWeights {
    wt: Tensor,
    /// Original `[F, C·KH·KW]` layout, kept for the direct stride-1 kernel
    /// (which reads filter-major taps rather than the GEMM transpose).
    w: Tensor,
    /// Tap-flipped, channel-swapped `[C, F, KH, KW]` layout for the direct
    /// transposed-convolution backward (square kernels only); built once at
    /// pack time so gradient loops never rebuild it per batch shard.
    flipped: Option<Tensor>,
    f: usize,
    c: usize,
    kh: usize,
    kw: usize,
}

/// Builds the `[C, F, KH, KW]` tap-flipped weights the transposed
/// convolution consumes: `flipped[ci][fi][ky][kx] =
/// w[fi][ci][KH−1−ky][KW−1−kx]`.
fn flip_weights(weight: &[f32], f: usize, c: usize, kh: usize, kw: usize) -> Vec<f32> {
    let mut flipped = vec![0.0f32; f * c * kh * kw];
    for ci in 0..c {
        for fi in 0..f {
            for ky in 0..kh {
                for kx in 0..kw {
                    flipped[((ci * f + fi) * kh + ky) * kw + kx] =
                        weight[((fi * c + ci) * kh + kh - 1 - ky) * kw + kw - 1 - kx];
                }
            }
        }
    }
    flipped
}

impl PackedConvWeights {
    /// Packs an `[F, C, KH, KW]` filter tensor.
    ///
    /// # Errors
    ///
    /// Returns an error if `weight` is not rank 4.
    pub fn pack(weight: &Tensor) -> Result<Self> {
        let (f, c, kh, kw) = dims4(weight)?;
        let kdim = checked_volume(&[c, kh, kw])?;
        let mut wt = vec![0.0f32; checked_volume(&[kdim, f])?];
        transpose_into(&mut wt, weight.data(), f, kdim);
        let flipped = if kh == kw && kh > 0 {
            Some(Tensor::from_vec(
                flip_weights(weight.data(), f, c, kh, kw),
                &[c, f, kh, kw],
            )?)
        } else {
            None
        };
        Ok(PackedConvWeights {
            wt: Tensor::from_vec(wt, &[kdim, f])?,
            w: weight.clone(),
            flipped,
            f,
            c,
            kh,
            kw,
        })
    }

    /// Number of filters `F`.
    pub fn filters(&self) -> usize {
        self.f
    }

    /// Expected input channels `C`.
    pub fn in_channels(&self) -> usize {
        self.c
    }

    /// Kernel extents `(KH, KW)`.
    pub fn kernel(&self) -> (usize, usize) {
        (self.kh, self.kw)
    }
}

/// Register-blocked direct stride-1 convolution over a zero-padded input:
/// `out[co][y][x] = bias[co] + Σ_{ci,ky,kx} w[co][ci][ky][kx] ·
/// padded[ci][y+ky][x+kx]`, for a compile-time row width `OW` and
/// output-channel block `CB`.
///
/// For the narrow layers this workspace runs (8–32 channels), im2col+GEMM
/// is dominated by materializing and re-reading the `[N·OH·OW, C·KH·KW]`
/// patch matrix; this kernel touches each input element straight out of a
/// padded plane copy instead. `CB` output-channel rows of constant width
/// accumulate in registers across the whole `(ci, ky, kx)` reduction — the
/// same fixed-size-array trick as the GEMM micro-kernel, and the same
/// reduction order as the GEMM formulation's k dimension; `CB` only blocks
/// independent outputs, so it never affects results.
#[allow(clippy::too_many_arguments)]
#[inline(always)]
fn direct_s1_image<const OW: usize, const CB: usize, const FMA: bool>(
    out_img: &mut [f32],
    padded: &[f32],
    weight: &[f32],
    bias: Option<&[f32]>,
    ci_n: usize,
    co_n: usize,
    k: usize,
    oh: usize,
    pw: usize,
) {
    let mut co0 = 0;
    while co0 < co_n {
        let cob = CB.min(co_n - co0);
        for y in 0..oh {
            let mut acc = [[0.0f32; OW]; CB];
            if let Some(b) = bias {
                for (j, row) in acc.iter_mut().enumerate().take(cob) {
                    row.fill(b[co0 + j]);
                }
            }
            for ci in 0..ci_n {
                let plane_row = (ci * (oh + k - 1) + y) * pw;
                for ky in 0..k {
                    let prow = &padded[plane_row + ky * pw..plane_row + (ky + 1) * pw];
                    let w_row = (ci * k + ky) * k;
                    for kx in 0..k {
                        let src: &[f32; OW] =
                            prow[kx..kx + OW].try_into().expect("OW-sized source row");
                        for (j, row) in acc.iter_mut().enumerate().take(cob) {
                            let wv = weight[(co0 + j) * ci_n * k * k + w_row + kx];
                            for (o, &s) in row.iter_mut().zip(src.iter()) {
                                *o = crate::matmul::madd::<FMA>(*o, wv, s);
                            }
                        }
                    }
                }
            }
            for (j, row) in acc.iter().enumerate().take(cob) {
                let dst_start = ((co0 + j) * oh + y) * OW;
                out_img[dst_start..dst_start + OW].copy_from_slice(row);
            }
        }
        co0 += cob;
    }
}

/// AVX2+FMA instantiations of [`direct_s1_image`]; callers must verify
/// support at runtime. The narrow-row variant doubles the channel block
/// (8 one-ymm accumulator rows instead of 4 idle-half tiles).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
#[allow(clippy::too_many_arguments)]
unsafe fn direct_s1_image_avx2<const OW: usize, const CB: usize>(
    out_img: &mut [f32],
    padded: &[f32],
    weight: &[f32],
    bias: Option<&[f32]>,
    ci_n: usize,
    co_n: usize,
    k: usize,
    oh: usize,
    pw: usize,
) {
    direct_s1_image::<OW, CB, true>(out_img, padded, weight, bias, ci_n, co_n, k, oh, pw);
}

/// Whether the direct stride-1 kernel handles this shape: square stride-1
/// kernels with sub-kernel padding on the two row widths the kernel is
/// instantiated for (8 and 16 — the LISA-CNN feature-map extents; wider
/// maps would need more accumulator registers than AVX2 offers).
fn direct_s1_applies(spec: ConvSpec, kh: usize, kw: usize, ow: usize) -> bool {
    spec.stride == 1 && kh == kw && kh > 0 && spec.padding < kh && (ow == 8 || ow == 16)
}

/// Runs the direct stride-1 convolution over a batch: pads each image's
/// planes into a scratch buffer (zero borders written once), then runs the
/// register-blocked kernel per image at the matching compile-time width.
/// Dispatch follows the caller's pre-resolved `tier` — no per-image CPU
/// feature queries.
#[allow(clippy::too_many_arguments)]
fn conv2d_direct_s1(
    tier: SimdTier,
    out: &mut [f32],
    input: &[f32],
    weight: &[f32],
    bias: Option<&[f32]>,
    n: usize,
    ci_n: usize,
    h: usize,
    w: usize,
    co_n: usize,
    k: usize,
    pad: usize,
    oh: usize,
    ow: usize,
    scratch: &mut Scratch,
) {
    let (ph, pw) = (h + 2 * pad, w + 2 * pad);
    // The interior is overwritten per image; only the border needs zeroing,
    // and only once — it is never written again.
    let mut padded = scratch.take_dirty(ci_n * ph * pw);
    for ci in 0..ci_n {
        let plane = &mut padded[ci * ph * pw..(ci + 1) * ph * pw];
        plane[..pad * pw].fill(0.0);
        plane[(h + pad) * pw..].fill(0.0);
        for y in 0..h {
            let row = &mut plane[(y + pad) * pw..(y + pad + 1) * pw];
            row[..pad].fill(0.0);
            row[pad + w..].fill(0.0);
        }
    }
    for ni in 0..n {
        for ci in 0..ci_n {
            for y in 0..h {
                let src = &input[((ni * ci_n + ci) * h + y) * w..][..w];
                padded[(ci * ph + y + pad) * pw + pad..(ci * ph + y + pad) * pw + pad + w]
                    .copy_from_slice(src);
            }
        }
        let out_img = &mut out[ni * co_n * oh * ow..(ni + 1) * co_n * oh * ow];
        match tier {
            #[cfg(target_arch = "x86_64")]
            SimdTier::Avx2Fma => {
                // SAFETY: an Avx2Fma tier is only ever constructed after
                // runtime verification that the CPU supports AVX2+FMA
                // (SimdTier::detect / CpuBackend::with_tier clamping).
                unsafe {
                    match ow {
                        8 => direct_s1_image_avx2::<8, 8>(
                            out_img, &padded, weight, bias, ci_n, co_n, k, oh, pw,
                        ),
                        _ => direct_s1_image_avx2::<16, 4>(
                            out_img, &padded, weight, bias, ci_n, co_n, k, oh, pw,
                        ),
                    }
                };
            }
            // Scalar tier (and the only arm on non-x86 targets) keeps 4-row
            // blocks: 8 rows of 8 floats would need every SSE2 register for
            // accumulators alone. FMA=true keeps it bit-identical to the
            // AVX2 tier (CB only blocks independent outputs).
            _ => match ow {
                8 => direct_s1_image::<8, 4, true>(
                    out_img, &padded, weight, bias, ci_n, co_n, k, oh, pw,
                ),
                _ => direct_s1_image::<16, 4, true>(
                    out_img, &padded, weight, bias, ci_n, co_n, k, oh, pw,
                ),
            },
        }
    }
    scratch.put(padded);
}

/// Shared core of [`conv2d_with_scratch`] / [`conv2d_prepacked`].
///
/// Narrow stride-1 convolutions take the register-blocked direct kernel
/// ([`conv2d_direct_s1`]); everything else runs fused-im2col GEMM against
/// the pre-transposed weights (`wt`, `[C·KH·KW, F]`, transposed here from
/// `w_orig` when no pack is supplied) followed by the
/// `[N·OH·OW, F]` → `[N, F, OH, OW]` reorder with bias. Both entry points
/// dispatch identically, so prepacked and plain calls stay bit-identical.
#[allow(clippy::too_many_arguments)]
fn conv2d_core(
    tier: SimdTier,
    input: &Tensor,
    w_orig: &[f32],
    wt: Option<&[f32]>,
    f: usize,
    kh: usize,
    kw: usize,
    bias: Option<&Tensor>,
    spec: ConvSpec,
    scratch: &mut Scratch,
) -> Result<Tensor> {
    let (n, c, h, w) = dims4(input)?;
    let oh = spec.output_extent(h, kh)?;
    let ow = spec.output_extent(w, kw)?;
    let rows = n * oh * ow;
    let kdim = c * kh * kw;

    if direct_s1_applies(spec, kh, kw, ow) {
        let mut out = vec![0.0f32; n * f * oh * ow];
        conv2d_direct_s1(
            tier,
            &mut out,
            input.data(),
            w_orig,
            bias.map(|b| b.data()),
            n,
            c,
            h,
            w,
            f,
            kh,
            spec.padding,
            oh,
            ow,
            scratch,
        );
        return Tensor::from_vec(out, &[n, f, oh, ow]);
    }

    // prod: [N*OH*OW, F], with the im2col patch rows generated inside the
    // GEMM's packing step — the patch matrix is never materialized.
    let patches = Im2colRows {
        data: input.data(),
        c,
        h,
        w,
        kh,
        kw,
        ow,
        hw_out: oh * ow,
        spec,
    };
    let mut prod = scratch.take_dirty(rows * f);
    match wt {
        Some(wt) => gemm_into_src(tier, &mut prod, &patches, wt, rows, kdim, f),
        None => {
            // Pack Wᵀ once per call: [F, C·KH·KW] -> [C·KH·KW, F] so the
            // GEMM streams both operands stride-1.
            let mut wt = scratch.take_dirty(kdim * f);
            transpose_into(&mut wt, w_orig, f, kdim);
            gemm_into_src(tier, &mut prod, &patches, &wt, rows, kdim, f);
            scratch.put(wt);
        }
    }

    // [N·OH·OW, F] -> [N, F, OH, OW] as one blocked transpose per image
    // (far kinder to the cache than a stride-F gather), then a streaming
    // bias pass.
    let mut out = vec![0.0f32; n * f * oh * ow];
    let hw = oh * ow;
    for ni in 0..n {
        transpose_into(
            &mut out[ni * f * hw..(ni + 1) * f * hw],
            &prod[ni * hw * f..(ni + 1) * hw * f],
            hw,
            f,
        );
    }
    scratch.put(prod);
    if let Some(bias) = bias {
        let b = bias.data();
        for ni in 0..n {
            for fi in 0..f {
                let plane = &mut out[(ni * f + fi) * hw..(ni * f + fi + 1) * hw];
                for o in plane.iter_mut() {
                    *o += b[fi];
                }
            }
        }
    }
    Tensor::from_vec(out, &[n, f, oh, ow])
}

fn check_conv_bias(bias: Option<&Tensor>, f: usize) -> Result<()> {
    if let Some(b) = bias {
        if b.dims() != [f] {
            return Err(TensorError::ShapeMismatch {
                left: b.dims().to_vec(),
                right: vec![f],
            });
        }
    }
    Ok(())
}

/// [`conv2d`] with an explicit workspace pool: the im2col patch matrix, the
/// packed (transposed) weight matrix and the GEMM product are all drawn from
/// `scratch`, so repeated forward passes allocate nothing.
///
/// # Errors
///
/// Returns an error on rank/shape mismatches or if the kernel does not fit
/// the padded input.
pub fn conv2d_with_scratch(
    input: &Tensor,
    weight: &Tensor,
    bias: Option<&Tensor>,
    spec: ConvSpec,
    scratch: &mut Scratch,
) -> Result<Tensor> {
    conv2d_with_scratch_t(scratch.tier(), input, weight, bias, spec, scratch)
}

/// [`conv2d_with_scratch`] dispatched through an explicit kernel tier
/// (backend entry) — the scratch supplies buffers only.
pub(crate) fn conv2d_with_scratch_t(
    tier: SimdTier,
    input: &Tensor,
    weight: &Tensor,
    bias: Option<&Tensor>,
    spec: ConvSpec,
    scratch: &mut Scratch,
) -> Result<Tensor> {
    let (_, c, _, _) = dims4(input)?;
    let (f, wc, kh, kw) = dims4(weight)?;
    if wc != c {
        return Err(TensorError::ShapeMismatch {
            left: vec![f, wc, kh, kw],
            right: vec![f, c, kh, kw],
        });
    }
    check_conv_bias(bias, f)?;
    conv2d_core(
        tier,
        input,
        weight.data(),
        None,
        f,
        kh,
        kw,
        bias,
        spec,
        scratch,
    )
}

/// [`conv2d`] against weights packed once with [`PackedConvWeights::pack`],
/// skipping the per-call weight transpose. Produces bit-identical results
/// to [`conv2d`] / [`conv2d_with_scratch`] on the same operands.
///
/// # Errors
///
/// Returns an error on rank/shape mismatches or if the kernel does not fit
/// the padded input.
pub fn conv2d_prepacked(
    input: &Tensor,
    weights: &PackedConvWeights,
    bias: Option<&Tensor>,
    spec: ConvSpec,
    scratch: &mut Scratch,
) -> Result<Tensor> {
    conv2d_prepacked_t(scratch.tier(), input, weights, bias, spec, scratch)
}

/// [`conv2d_prepacked`] dispatched through an explicit kernel tier
/// (backend entry) — the scratch supplies buffers only.
pub(crate) fn conv2d_prepacked_t(
    tier: SimdTier,
    input: &Tensor,
    weights: &PackedConvWeights,
    bias: Option<&Tensor>,
    spec: ConvSpec,
    scratch: &mut Scratch,
) -> Result<Tensor> {
    let (_, c, _, _) = dims4(input)?;
    if c != weights.c {
        return Err(TensorError::ShapeMismatch {
            left: input.dims().to_vec(),
            right: vec![0, weights.c, 0, 0],
        });
    }
    check_conv_bias(bias, weights.f)?;
    conv2d_core(
        tier,
        input,
        weights.w.data(),
        Some(weights.wt.data()),
        weights.f,
        weights.kh,
        weights.kw,
        bias,
        spec,
        scratch,
    )
}

/// Backward pass of [`conv2d`] using this thread's shared [`Scratch`] pool.
///
/// `grad_output` must be `[N, F, OH, OW]` matching the forward output.
///
/// # Errors
///
/// Returns an error on rank/shape mismatches.
pub fn conv2d_backward(
    input: &Tensor,
    weight: &Tensor,
    grad_output: &Tensor,
    spec: ConvSpec,
) -> Result<Conv2dGrads> {
    Scratch::with_thread_local(|scratch| {
        conv2d_backward_with_scratch(input, weight, grad_output, spec, scratch)
    })
}

/// [`conv2d_backward`] with an explicit workspace pool.
///
/// # Errors
///
/// Returns an error on rank/shape mismatches.
pub fn conv2d_backward_with_scratch(
    input: &Tensor,
    weight: &Tensor,
    grad_output: &Tensor,
    spec: ConvSpec,
    scratch: &mut Scratch,
) -> Result<Conv2dGrads> {
    conv2d_backward_with_scratch_t(scratch.tier(), input, weight, grad_output, spec, scratch)
}

/// [`conv2d_backward_with_scratch`] dispatched through an explicit kernel
/// tier (backend entry) — the scratch supplies buffers only.
pub(crate) fn conv2d_backward_with_scratch_t(
    tier: SimdTier,
    input: &Tensor,
    weight: &Tensor,
    grad_output: &Tensor,
    spec: ConvSpec,
    scratch: &mut Scratch,
) -> Result<Conv2dGrads> {
    let (n, c, h, w) = dims4(input)?;
    let (f, _, kh, kw) = dims4(weight)?;
    let (gn, gf, oh, ow) = dims4(grad_output)?;
    let exp_oh = spec.output_extent(h, kh)?;
    let exp_ow = spec.output_extent(w, kw)?;
    if gn != n || gf != f || oh != exp_oh || ow != exp_ow {
        return Err(TensorError::ShapeMismatch {
            left: grad_output.dims().to_vec(),
            right: vec![n, f, exp_oh, exp_ow],
        });
    }
    let rows = n * oh * ow;
    let kdim = c * kh * kw;
    let hw = oh * ow;
    // `rows` and `kdim` each fit (they index real tensors), but their
    // product sizes the im2col workspace and can overflow on its own.
    let cols_len = checked_volume(&[rows, kdim])?;

    // Bias gradients: plane sums of grad_output, in (image, filter) order.
    let g = grad_output.data();
    let mut d_bias = vec![0.0f32; f];
    for ni in 0..n {
        for (fi, bias) in d_bias.iter_mut().enumerate() {
            let src = &g[(ni * f + fi) * hw..(ni * f + fi + 1) * hw];
            *bias += src.iter().sum::<f32>();
        }
    }

    let mut cols = scratch.take(cols_len);
    im2col_into(input, kh, kw, spec, oh, ow, &mut cols);

    // dW = gmatᵀ (F×M) · cols (M×K). The transpose is assembled from
    // grad_output's own planes — row `fi` of gmatᵀ is the concatenation of
    // every image's plane `fi`, so it packs as contiguous copies.
    let mut gt = scratch.take_dirty(f * rows);
    for ni in 0..n {
        for fi in 0..f {
            gt[fi * rows + ni * hw..fi * rows + (ni + 1) * hw]
                .copy_from_slice(&g[(ni * f + fi) * hw..(ni * f + fi + 1) * hw]);
        }
    }
    let mut d_weight = vec![0.0f32; f * kdim];
    gemm_into(tier, &mut d_weight, &gt, &cols, f, rows, kdim);
    scratch.put(gt);
    scratch.put(cols);

    // d_input through the shared input-gradient entry point — the same
    // dispatch (direct transposed kernel or GEMM + col2im) the batched
    // gradient engine uses, so the two backwards stay bit-identical.
    let d_input =
        conv2d_input_grad_with_scratch_t(tier, weight, grad_output, &[n, c, h, w], spec, scratch)?;

    Ok(Conv2dGrads {
        d_input,
        d_weight: Tensor::from_vec(d_weight, &[f, c, kh, kw])?,
        d_bias: Tensor::from_vec(d_bias, &[f])?,
    })
}

/// Reorders `[N, F, OH, OW]` gradients into the GEMM-ready
/// `[N·OH·OW, F]` layout as one blocked transpose per image.
fn grad_to_gmat(gmat: &mut [f32], g: &[f32], n: usize, f: usize, hw: usize) {
    for ni in 0..n {
        transpose_into(
            &mut gmat[ni * hw * f..(ni + 1) * hw * f],
            &g[ni * f * hw..(ni + 1) * f * hw],
            f,
            hw,
        );
    }
}

/// Input gradient of [`conv2d`] **only** — the backward path attack
/// generation needs: adversarial optimizers differentiate the loss with
/// respect to the *image*, never the weights, so the `dW` GEMM, its
/// `im2col` of the forward input and the bias reduction of
/// [`conv2d_backward_with_scratch`] are pure overhead there. This computes
/// `d_input = col2im(g · W)` alone — a blocked per-image transpose of the
/// gradients, one GEMM, and the stripe-structured [`col2im`] fold — drawing
/// every workspace buffer from `scratch`, with the receiver-side layer
/// staying immutable (the caller supplies the recorded `input_dims`).
///
/// Produces exactly the `d_input` that [`conv2d_backward_with_scratch`]
/// returns on the same operands (same GEMM and fold, same accumulation
/// order).
///
/// # Errors
///
/// Returns an error on rank/shape mismatches between `weight`,
/// `grad_output` and `input_dims`.
pub fn conv2d_input_grad_with_scratch(
    weight: &Tensor,
    grad_output: &Tensor,
    input_dims: &[usize],
    spec: ConvSpec,
    scratch: &mut Scratch,
) -> Result<Tensor> {
    conv2d_input_grad_with_scratch_t(
        scratch.tier(),
        weight,
        grad_output,
        input_dims,
        spec,
        scratch,
    )
}

/// [`conv2d_input_grad_with_scratch`] dispatched through an explicit kernel
/// tier (backend entry) — the scratch supplies buffers only.
pub(crate) fn conv2d_input_grad_with_scratch_t(
    tier: SimdTier,
    weight: &Tensor,
    grad_output: &Tensor,
    input_dims: &[usize],
    spec: ConvSpec,
    scratch: &mut Scratch,
) -> Result<Tensor> {
    if input_dims.len() != 4 {
        return Err(TensorError::RankMismatch {
            expected: 4,
            actual: input_dims.len(),
        });
    }
    let (n, c, h, w) = (input_dims[0], input_dims[1], input_dims[2], input_dims[3]);
    let (f, wc, kh, kw) = dims4(weight)?;
    let (gn, gf, oh, ow) = dims4(grad_output)?;
    let exp_oh = spec.output_extent(h, kh)?;
    let exp_ow = spec.output_extent(w, kw)?;
    if gn != n || gf != f || wc != c || oh != exp_oh || ow != exp_ow {
        return Err(TensorError::ShapeMismatch {
            left: grad_output.dims().to_vec(),
            right: vec![n, f, exp_oh, exp_ow],
        });
    }
    // Stride-1 convolutions run the backward as a *direct transposed
    // convolution*: flipping the kernel taps and swapping the channel axes
    // turns `d_input = col2im(g · W)` into a plain stride-1 convolution of
    // `grad_output` with padding `K−1−P`, which the register-blocked direct
    // kernel executes without materializing anything.
    if direct_s1_applies(spec, kh, kw, w) {
        let flipped = flip_weights(weight.data(), f, c, kh, kw);
        return input_grad_direct(
            tier,
            &flipped,
            grad_output,
            input_dims,
            f,
            c,
            kh,
            spec,
            scratch,
        );
    }
    input_grad_gemm(
        tier,
        weight.data(),
        grad_output,
        input_dims,
        f,
        kh,
        kw,
        spec,
        scratch,
    )
}

/// [`conv2d_input_grad_with_scratch`] against weights packed once with
/// [`PackedConvWeights::pack`]: the direct transposed kernel consumes the
/// pack's pre-flipped taps, so gradient loops (PGD steps, RP2 iterations)
/// pay the flip exactly once per pass instead of once per batch shard.
/// Bit-identical to [`conv2d_input_grad_with_scratch`] on the same
/// operands.
///
/// # Errors
///
/// Returns an error on rank/shape mismatches between the pack,
/// `grad_output` and `input_dims`.
pub fn conv2d_input_grad_prepacked(
    weights: &PackedConvWeights,
    grad_output: &Tensor,
    input_dims: &[usize],
    spec: ConvSpec,
    scratch: &mut Scratch,
) -> Result<Tensor> {
    conv2d_input_grad_prepacked_t(
        scratch.tier(),
        weights,
        grad_output,
        input_dims,
        spec,
        scratch,
    )
}

/// [`conv2d_input_grad_prepacked`] dispatched through an explicit kernel
/// tier (backend entry) — the scratch supplies buffers only.
pub(crate) fn conv2d_input_grad_prepacked_t(
    tier: SimdTier,
    weights: &PackedConvWeights,
    grad_output: &Tensor,
    input_dims: &[usize],
    spec: ConvSpec,
    scratch: &mut Scratch,
) -> Result<Tensor> {
    if input_dims.len() != 4 {
        return Err(TensorError::RankMismatch {
            expected: 4,
            actual: input_dims.len(),
        });
    }
    let (n, c, h, w) = (input_dims[0], input_dims[1], input_dims[2], input_dims[3]);
    let (f, kh, kw) = (weights.f, weights.kh, weights.kw);
    let (gn, gf, oh, ow) = dims4(grad_output)?;
    let exp_oh = spec.output_extent(h, kh)?;
    let exp_ow = spec.output_extent(w, kw)?;
    if gn != n || gf != f || weights.c != c || oh != exp_oh || ow != exp_ow {
        return Err(TensorError::ShapeMismatch {
            left: grad_output.dims().to_vec(),
            right: vec![n, f, exp_oh, exp_ow],
        });
    }
    if direct_s1_applies(spec, kh, kw, w) {
        if let Some(flipped) = &weights.flipped {
            return input_grad_direct(
                tier,
                flipped.data(),
                grad_output,
                input_dims,
                f,
                c,
                kh,
                spec,
                scratch,
            );
        }
    }
    input_grad_gemm(
        tier,
        weights.w.data(),
        grad_output,
        input_dims,
        f,
        kh,
        kw,
        spec,
        scratch,
    )
}

/// Direct-transposed-convolution input gradient (validated dims only;
/// the caller-supplied `input_dims` volume is overflow-checked before any
/// allocation since it originates outside the tensor crate).
#[allow(clippy::too_many_arguments)]
fn input_grad_direct(
    tier: SimdTier,
    flipped: &[f32],
    grad_output: &Tensor,
    input_dims: &[usize],
    f: usize,
    c: usize,
    k: usize,
    spec: ConvSpec,
    scratch: &mut Scratch,
) -> Result<Tensor> {
    let (n, h, w) = (input_dims[0], input_dims[2], input_dims[3]);
    let (oh, ow) = (grad_output.dims()[2], grad_output.dims()[3]);
    let flip_pad = k - 1 - spec.padding;
    let mut d_input = vec![0.0f32; checked_volume(input_dims)?];
    conv2d_direct_s1(
        tier,
        &mut d_input,
        grad_output.data(),
        flipped,
        None,
        n,
        f,
        oh,
        ow,
        c,
        k,
        flip_pad,
        h,
        w,
        scratch,
    );
    Tensor::from_vec(d_input, input_dims)
}

/// GEMM + col2im input gradient (validated dims only; workspace sizes are
/// overflow-checked because `input_dims` comes from outside the crate).
#[allow(clippy::too_many_arguments)]
fn input_grad_gemm(
    tier: SimdTier,
    weight: &[f32],
    grad_output: &Tensor,
    input_dims: &[usize],
    f: usize,
    kh: usize,
    kw: usize,
    spec: ConvSpec,
    scratch: &mut Scratch,
) -> Result<Tensor> {
    let (n, c) = (input_dims[0], input_dims[1]);
    let (oh, ow) = (grad_output.dims()[2], grad_output.dims()[3]);
    let rows = n * oh * ow;
    let kdim = checked_volume(&[c, kh, kw])?;
    let mut gmat = scratch.take_dirty(checked_volume(&[rows, f])?);
    grad_to_gmat(&mut gmat, grad_output.data(), n, f, oh * ow);

    // dCols = gmat (M×F) · wmat (F×K), then fold back to the input shape.
    let mut d_cols = scratch.take_dirty(checked_volume(&[rows, kdim])?);
    gemm_into(tier, &mut d_cols, &gmat, weight, rows, f, kdim);
    scratch.put(gmat);
    let d_cols_t = Tensor::from_vec(std::mem::take(&mut d_cols), &[rows, kdim])?;
    let d_input = col2im(&d_cols_t, input_dims, kh, kw, spec)?;
    scratch.put(d_cols_t.into_vec());
    Ok(d_input)
}

/// Gradients produced by [`depthwise_conv2d_backward`].
#[derive(Debug, Clone)]
pub struct DepthwiseGrads {
    /// Gradient with respect to the input.
    pub d_input: Tensor,
    /// Gradient with respect to the per-channel kernels (`[C, KH, KW]`).
    pub d_weight: Tensor,
    /// Gradient with respect to the per-channel bias (`[C]`).
    pub d_bias: Tensor,
}

/// Computes one stride-1 depthwise output plane as `KH·KW` shifted-row
/// axpy passes — no im2col, no per-pixel bounds checks, and the same
/// per-output-element accumulation order as the gather loop (so results are
/// bit-identical to it).
#[allow(clippy::too_many_arguments)]
fn depthwise_plane_stride1(
    out_plane: &mut [f32],
    in_plane: &[f32],
    kernel: &[f32],
    bias: f32,
    h: usize,
    w: usize,
    oh: usize,
    ow: usize,
    kh: usize,
    kw: usize,
    pad: isize,
) {
    out_plane.fill(bias);
    for ky in 0..kh {
        let dy = ky as isize - pad;
        let oy_lo = (-dy).max(0) as usize;
        let oy_hi = ((h as isize - dy).min(oh as isize)).max(0) as usize;
        for kx in 0..kw {
            let weight = kernel[ky * kw + kx];
            let dx = kx as isize - pad;
            let ox_lo = (-dx).max(0) as usize;
            let ox_hi = ((w as isize - dx).min(ow as isize)).max(0) as usize;
            if ox_lo >= ox_hi {
                continue;
            }
            for oy in oy_lo..oy_hi {
                let in_row = ((oy as isize + dy) as usize) * w;
                // dx + ox_lo >= 0 by construction of ox_lo.
                let src_start = in_row + (dx + ox_lo as isize) as usize;
                let src = &in_plane[src_start..src_start + (ox_hi - ox_lo)];
                let dst = &mut out_plane[oy * ow + ox_lo..oy * ow + ox_hi];
                for (o, &s) in dst.iter_mut().zip(src.iter()) {
                    *o += weight * s;
                }
            }
        }
    }
}

/// General (any stride) depthwise output plane via the gather loop.
#[allow(clippy::too_many_arguments)]
fn depthwise_plane_general(
    out_plane: &mut [f32],
    in_plane: &[f32],
    kernel: &[f32],
    bias: f32,
    h: usize,
    w: usize,
    oh: usize,
    ow: usize,
    kh: usize,
    kw: usize,
    spec: ConvSpec,
) {
    let pad = spec.padding as isize;
    for oy in 0..oh {
        let y0 = (oy * spec.stride) as isize - pad;
        for ox in 0..ow {
            let x0 = (ox * spec.stride) as isize - pad;
            let mut acc = bias;
            for ky in 0..kh {
                let y = y0 + ky as isize;
                if y < 0 || y >= h as isize {
                    continue;
                }
                let in_row = y as usize * w;
                let k_row = ky * kw;
                for kx in 0..kw {
                    let x = x0 + kx as isize;
                    if x < 0 || x >= w as isize {
                        continue;
                    }
                    acc += in_plane[in_row + x as usize] * kernel[k_row + kx];
                }
            }
            out_plane[oy * ow + ox] = acc;
        }
    }
}

/// Depthwise 2-D convolution: each channel is convolved with its own kernel.
///
/// * `input`:  `[N, C, H, W]`
/// * `weight`: `[C, KH, KW]`
/// * `bias`:   optional `[C]`
///
/// Returns `[N, C, OH, OW]`. This is the filtering layer BlurNet inserts
/// after the first convolution; it runs im2col-free — stride-1 calls (the
/// only configuration BlurNet uses) take a vectorised shifted-row fast path,
/// and planes are processed rayon-parallel.
///
/// # Errors
///
/// Returns an error on rank/shape mismatches or if the kernel does not fit.
pub fn depthwise_conv2d(
    input: &Tensor,
    weight: &Tensor,
    bias: Option<&Tensor>,
    spec: ConvSpec,
) -> Result<Tensor> {
    let (n, c, h, w) = dims4(input)?;
    if weight.shape().rank() != 3 || weight.dims()[0] != c {
        return Err(TensorError::ShapeMismatch {
            left: weight.dims().to_vec(),
            right: vec![c, 0, 0],
        });
    }
    let (kh, kw) = (weight.dims()[1], weight.dims()[2]);
    if let Some(b) = bias {
        if b.dims() != [c] {
            return Err(TensorError::ShapeMismatch {
                left: b.dims().to_vec(),
                right: vec![c],
            });
        }
    }
    let oh = spec.output_extent(h, kh)?;
    let ow = spec.output_extent(w, kw)?;
    let mut out = vec![0.0f32; n * c * oh * ow];
    let data = input.data();
    let wdata = weight.data();
    let pad = spec.padding as isize;

    let plane = |pi: usize, out_plane: &mut [f32]| {
        let ci = pi % c;
        let in_plane = &data[pi * h * w..(pi + 1) * h * w];
        let kernel = &wdata[ci * kh * kw..(ci + 1) * kh * kw];
        let b = bias.map_or(0.0, |b| b.data()[ci]);
        if spec.stride == 1 {
            depthwise_plane_stride1(out_plane, in_plane, kernel, b, h, w, oh, ow, kh, kw, pad);
        } else {
            depthwise_plane_general(out_plane, in_plane, kernel, b, h, w, oh, ow, kh, kw, spec);
        }
    };

    if n * c * oh * ow * kh * kw < PAR_WORK || rayon::current_num_threads() <= 1 {
        for (pi, out_plane) in out.chunks_mut(oh * ow).enumerate() {
            plane(pi, out_plane);
        }
    } else {
        out.par_chunks_mut(oh * ow)
            .enumerate()
            .for_each(|(pi, p)| plane(pi, p));
    }
    Tensor::from_vec(out, &[n, c, oh, ow])
}

/// Input gradient of [`depthwise_conv2d`] **only** — the immutable
/// attack-generation backward: no weight or bias gradients, no access to
/// the forward input (only its recorded `input_dims`), so a frozen layer
/// can serve many batch shards concurrently.
///
/// Produces exactly the `d_input` that [`depthwise_conv2d_backward`]
/// returns on the same operands (same scatter loop, same accumulation
/// order).
///
/// # Errors
///
/// Returns an error on rank/shape mismatches between `weight`,
/// `grad_output` and `input_dims`.
pub fn depthwise_input_grad(
    weight: &Tensor,
    grad_output: &Tensor,
    input_dims: &[usize],
    spec: ConvSpec,
) -> Result<Tensor> {
    if input_dims.len() != 4 {
        return Err(TensorError::RankMismatch {
            expected: 4,
            actual: input_dims.len(),
        });
    }
    let (n, c, h, w) = (input_dims[0], input_dims[1], input_dims[2], input_dims[3]);
    if weight.shape().rank() != 3 || weight.dims()[0] != c {
        return Err(TensorError::ShapeMismatch {
            left: weight.dims().to_vec(),
            right: vec![c, 0, 0],
        });
    }
    let (kh, kw) = (weight.dims()[1], weight.dims()[2]);
    let oh = spec.output_extent(h, kh)?;
    let ow = spec.output_extent(w, kw)?;
    if grad_output.dims() != [n, c, oh, ow] {
        return Err(TensorError::ShapeMismatch {
            left: grad_output.dims().to_vec(),
            right: vec![n, c, oh, ow],
        });
    }
    let wd = weight.data();
    let g = grad_output.data();
    let pad = spec.padding as isize;
    let parallel = n * c * oh * ow * kh * kw >= PAR_WORK && rayon::current_num_threads() > 1;

    // Every (image, channel) plane scatters only into itself. The caller
    // supplies `input_dims`, so its volume is overflow-checked before the
    // allocation.
    let mut d_input = vec![0.0f32; checked_volume(input_dims)?];
    let input_plane = |pi: usize, d_in: &mut [f32]| {
        let ci = pi % c;
        let kernel = &wd[ci * kh * kw..(ci + 1) * kh * kw];
        let g_plane = &g[pi * oh * ow..(pi + 1) * oh * ow];
        for oy in 0..oh {
            let y0 = (oy * spec.stride) as isize - pad;
            for ox in 0..ow {
                let go = g_plane[oy * ow + ox];
                if go == 0.0 {
                    continue;
                }
                let x0 = (ox * spec.stride) as isize - pad;
                for ky in 0..kh {
                    let y = y0 + ky as isize;
                    if y < 0 || y >= h as isize {
                        continue;
                    }
                    let d_row = y as usize * w;
                    let k_row = ky * kw;
                    for kx in 0..kw {
                        let xp = x0 + kx as isize;
                        if xp < 0 || xp >= w as isize {
                            continue;
                        }
                        d_in[d_row + xp as usize] += go * kernel[k_row + kx];
                    }
                }
            }
        }
    };
    if parallel {
        d_input
            .par_chunks_mut(h * w)
            .enumerate()
            .for_each(|(pi, p)| input_plane(pi, p));
    } else {
        for (pi, p) in d_input.chunks_mut(h * w).enumerate() {
            input_plane(pi, p);
        }
    }
    Tensor::from_vec(d_input, input_dims)
}

/// Backward pass of [`depthwise_conv2d`].
///
/// Runs as two parallel passes with disjoint writes: input gradients per
/// `(image, channel)` plane (shared with [`depthwise_input_grad`]), then
/// weight/bias gradients per channel.
///
/// # Errors
///
/// Returns an error on rank/shape mismatches.
pub fn depthwise_conv2d_backward(
    input: &Tensor,
    weight: &Tensor,
    grad_output: &Tensor,
    spec: ConvSpec,
) -> Result<DepthwiseGrads> {
    let (n, c, h, w) = dims4(input)?;
    let (kh, kw) = (weight.dims()[1], weight.dims()[2]);
    let oh = spec.output_extent(h, kh)?;
    let ow = spec.output_extent(w, kw)?;
    if grad_output.dims() != [n, c, oh, ow] {
        return Err(TensorError::ShapeMismatch {
            left: grad_output.dims().to_vec(),
            right: vec![n, c, oh, ow],
        });
    }
    let x = input.data();
    let g = grad_output.data();
    let pad = spec.padding as isize;
    let parallel = n * c * oh * ow * kh * kw >= PAR_WORK && rayon::current_num_threads() > 1;

    // Pass 1 — d_input, shared with the input-only backward.
    let d_input = depthwise_input_grad(weight, grad_output, input.dims(), spec)?;

    // Pass 2 — d_weight/d_bias: each channel accumulates over the batch,
    // with exclusive ownership of its kernel and bias slots.
    let mut d_weight = vec![0.0f32; c * kh * kw];
    let mut d_bias = vec![0.0f32; c];
    let weight_channel = |ci: usize, (d_w, d_b): (&mut [f32], &mut [f32])| {
        for ni in 0..n {
            let base = (ni * c + ci) * h * w;
            let g_plane = &g[(ni * c + ci) * oh * ow..(ni * c + ci + 1) * oh * ow];
            for oy in 0..oh {
                let y0 = (oy * spec.stride) as isize - pad;
                for ox in 0..ow {
                    let go = g_plane[oy * ow + ox];
                    if go == 0.0 {
                        continue;
                    }
                    d_b[0] += go;
                    let x0 = (ox * spec.stride) as isize - pad;
                    for ky in 0..kh {
                        let y = y0 + ky as isize;
                        if y < 0 || y >= h as isize {
                            continue;
                        }
                        let in_row = base + y as usize * w;
                        let k_row = ky * kw;
                        for kx in 0..kw {
                            let xp = x0 + kx as isize;
                            if xp < 0 || xp >= w as isize {
                                continue;
                            }
                            d_w[k_row + kx] += go * x[in_row + xp as usize];
                        }
                    }
                }
            }
        }
    };
    if parallel {
        d_weight
            .par_chunks_mut(kh * kw)
            .zip(d_bias.par_chunks_mut(1))
            .enumerate()
            .for_each(|(ci, pair)| weight_channel(ci, pair));
    } else {
        for (ci, pair) in d_weight
            .chunks_mut(kh * kw)
            .zip(d_bias.chunks_mut(1))
            .enumerate()
        {
            weight_channel(ci, pair);
        }
    }

    Ok(DepthwiseGrads {
        d_input,
        d_weight: Tensor::from_vec(d_weight, &[c, kh, kw])?,
        d_bias: Tensor::from_vec(d_bias, &[c])?,
    })
}

/// Seed (pre-optimisation) implementations for equivalence tests and
/// benchmark baselines; see [`crate::reference`].
pub mod reference {
    use super::{dims4, ConvSpec};
    use crate::{Result, Tensor, TensorError};

    /// The seed `depthwise_conv2d`: per-pixel gather loop with bounds checks
    /// in the innermost loops.
    ///
    /// # Errors
    ///
    /// Same contract as [`super::depthwise_conv2d`].
    pub fn depthwise_conv2d_naive(
        input: &Tensor,
        weight: &Tensor,
        bias: Option<&Tensor>,
        spec: ConvSpec,
    ) -> Result<Tensor> {
        let (n, c, h, w) = dims4(input)?;
        if weight.shape().rank() != 3 || weight.dims()[0] != c {
            return Err(TensorError::ShapeMismatch {
                left: weight.dims().to_vec(),
                right: vec![c, 0, 0],
            });
        }
        let (kh, kw) = (weight.dims()[1], weight.dims()[2]);
        let oh = spec.output_extent(h, kh)?;
        let ow = spec.output_extent(w, kw)?;
        let mut out = vec![0.0f32; n * c * oh * ow];
        let data = input.data();
        let wdata = weight.data();
        let pad = spec.padding as isize;
        for ni in 0..n {
            for ci in 0..c {
                let in_base = (ni * c + ci) * h * w;
                let k_base = ci * kh * kw;
                let b = bias.map_or(0.0, |b| b.data()[ci]);
                for oy in 0..oh {
                    let y0 = (oy * spec.stride) as isize - pad;
                    for ox in 0..ow {
                        let x0 = (ox * spec.stride) as isize - pad;
                        let mut acc = b;
                        for ky in 0..kh {
                            let y = y0 + ky as isize;
                            if y < 0 || y >= h as isize {
                                continue;
                            }
                            let in_row = in_base + y as usize * w;
                            let k_row = k_base + ky * kw;
                            for kx in 0..kw {
                                let x = x0 + kx as isize;
                                if x < 0 || x >= w as isize {
                                    continue;
                                }
                                acc += data[in_row + x as usize] * wdata[k_row + kx];
                            }
                        }
                        out[((ni * c + ci) * oh + oy) * ow + ox] = acc;
                    }
                }
            }
        }
        Tensor::from_vec(out, &[n, c, oh, ow])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    /// Direct (loop-based) reference convolution used to validate the
    /// im2col implementation.
    fn naive_conv2d(
        input: &Tensor,
        weight: &Tensor,
        bias: Option<&Tensor>,
        spec: ConvSpec,
    ) -> Tensor {
        let (n, c, h, w) = (
            input.dims()[0],
            input.dims()[1],
            input.dims()[2],
            input.dims()[3],
        );
        let (f, _, kh, kw) = (
            weight.dims()[0],
            weight.dims()[1],
            weight.dims()[2],
            weight.dims()[3],
        );
        let oh = spec.output_extent(h, kh).unwrap();
        let ow = spec.output_extent(w, kw).unwrap();
        let mut out = Tensor::zeros(&[n, f, oh, ow]);
        for ni in 0..n {
            for fi in 0..f {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut acc = bias.map_or(0.0, |b| b.data()[fi]);
                        for ci in 0..c {
                            for ky in 0..kh {
                                for kx in 0..kw {
                                    let y =
                                        (oy * spec.stride + ky) as isize - spec.padding as isize;
                                    let x =
                                        (ox * spec.stride + kx) as isize - spec.padding as isize;
                                    if y < 0 || y >= h as isize || x < 0 || x >= w as isize {
                                        continue;
                                    }
                                    acc += input.get(&[ni, ci, y as usize, x as usize]).unwrap()
                                        * weight.get(&[fi, ci, ky, kx]).unwrap();
                                }
                            }
                        }
                        out.set(&[ni, fi, oy, ox], acc).unwrap();
                    }
                }
            }
        }
        out
    }

    #[test]
    fn output_extent_math() {
        let s = ConvSpec::new(2, 1).unwrap();
        assert_eq!(s.output_extent(32, 5).unwrap(), 15);
        assert_eq!(ConvSpec::same(5).unwrap().output_extent(32, 5).unwrap(), 32);
        assert_eq!(ConvSpec::valid().output_extent(32, 5).unwrap(), 28);
        assert!(ConvSpec::valid().output_extent(2, 5).is_err());
        assert!(ConvSpec::new(0, 0).is_err());
    }

    #[test]
    fn same_rejects_even_and_zero_kernels() {
        // Regression: `same(4)` used to silently produce a spec whose output
        // is one pixel short of the input.
        for k in [0usize, 2, 4, 8] {
            assert!(
                matches!(ConvSpec::same(k), Err(TensorError::InvalidSpec(_))),
                "kernel {k} must be rejected"
            );
        }
        for k in [1usize, 3, 5, 7] {
            let spec = ConvSpec::same(k).unwrap();
            assert_eq!(spec.stride, 1);
            assert_eq!(spec.output_extent(32, k).unwrap(), 32, "kernel {k}");
        }
    }

    #[test]
    fn conv2d_matches_naive() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        for &(stride, padding) in &[(1usize, 0usize), (1, 2), (2, 1)] {
            let spec = ConvSpec { stride, padding };
            let input = Tensor::rand_uniform(&[2, 3, 9, 8], -1.0, 1.0, &mut rng);
            let weight = Tensor::rand_uniform(&[4, 3, 3, 3], -1.0, 1.0, &mut rng);
            let bias = Tensor::rand_uniform(&[4], -0.5, 0.5, &mut rng);
            let fast = conv2d(&input, &weight, Some(&bias), spec).unwrap();
            let slow = naive_conv2d(&input, &weight, Some(&bias), spec);
            assert_eq!(fast.dims(), slow.dims());
            for (a, b) in fast.data().iter().zip(slow.data().iter()) {
                assert!((a - b).abs() < 1e-4, "{a} vs {b}");
            }
        }
    }

    #[test]
    fn conv2d_identity_kernel_preserves_input() {
        // A 1x1 kernel of value 1 on a single channel is the identity.
        let input = Tensor::from_vec((0..16).map(|v| v as f32).collect(), &[1, 1, 4, 4]).unwrap();
        let weight = Tensor::ones(&[1, 1, 1, 1]);
        let out = conv2d(&input, &weight, None, ConvSpec::valid()).unwrap();
        assert_eq!(out.data(), input.data());
    }

    #[test]
    fn conv2d_scratch_reuse_is_deterministic() {
        // Two identical calls through one scratch pool must agree exactly
        // (buffer reuse must not leak state between calls).
        let mut rng = ChaCha8Rng::seed_from_u64(41);
        let input = Tensor::rand_uniform(&[2, 3, 12, 12], -1.0, 1.0, &mut rng);
        let weight = Tensor::rand_uniform(&[5, 3, 3, 3], -1.0, 1.0, &mut rng);
        let spec = ConvSpec::same(3).unwrap();
        let mut scratch = Scratch::new();
        let first = conv2d_with_scratch(&input, &weight, None, spec, &mut scratch).unwrap();
        assert!(scratch.pooled() > 0);
        let second = conv2d_with_scratch(&input, &weight, None, spec, &mut scratch).unwrap();
        assert_eq!(first, second);
        // And a *different* problem through the same pool stays correct.
        let small = Tensor::rand_uniform(&[1, 3, 5, 5], -1.0, 1.0, &mut rng);
        let got = conv2d_with_scratch(&small, &weight, None, spec, &mut scratch).unwrap();
        let expected = naive_conv2d(&small, &weight, None, spec);
        for (a, b) in got.data().iter().zip(expected.data().iter()) {
            assert!((a - b).abs() < 1e-4);
        }
    }

    #[test]
    fn conv2d_prepacked_is_bit_identical_to_conv2d() {
        let mut rng = ChaCha8Rng::seed_from_u64(53);
        for &(stride, padding) in &[(1usize, 1usize), (2, 2), (1, 0)] {
            let spec = ConvSpec { stride, padding };
            let input = Tensor::rand_uniform(&[3, 4, 10, 9], -1.0, 1.0, &mut rng);
            let weight = Tensor::rand_uniform(&[6, 4, 3, 3], -1.0, 1.0, &mut rng);
            let bias = Tensor::rand_uniform(&[6], -0.5, 0.5, &mut rng);
            let packed = PackedConvWeights::pack(&weight).unwrap();
            assert_eq!(packed.filters(), 6);
            assert_eq!(packed.in_channels(), 4);
            assert_eq!(packed.kernel(), (3, 3));
            let mut scratch = Scratch::new();
            let plain = conv2d(&input, &weight, Some(&bias), spec).unwrap();
            let fast = conv2d_prepacked(&input, &packed, Some(&bias), spec, &mut scratch).unwrap();
            // Same accumulation order everywhere: bit identity, not tolerance.
            assert_eq!(plain, fast, "stride {stride} pad {padding}");
        }
        // Channel mismatch and bad bias are rejected.
        let packed = PackedConvWeights::pack(&Tensor::zeros(&[2, 3, 3, 3])).unwrap();
        let mut scratch = Scratch::new();
        let wrong_c = Tensor::zeros(&[1, 4, 8, 8]);
        assert!(
            conv2d_prepacked(&wrong_c, &packed, None, ConvSpec::valid(), &mut scratch).is_err()
        );
        let input = Tensor::zeros(&[1, 3, 8, 8]);
        let bad_bias = Tensor::zeros(&[3]);
        assert!(conv2d_prepacked(
            &input,
            &packed,
            Some(&bad_bias),
            ConvSpec::valid(),
            &mut scratch
        )
        .is_err());
        assert!(PackedConvWeights::pack(&Tensor::zeros(&[2, 3, 3])).is_err());
    }

    #[test]
    fn conv2d_backward_matches_numerical_gradient() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let spec = ConvSpec {
            stride: 1,
            padding: 1,
        };
        let input = Tensor::rand_uniform(&[1, 2, 5, 5], -1.0, 1.0, &mut rng);
        let weight = Tensor::rand_uniform(&[3, 2, 3, 3], -1.0, 1.0, &mut rng);
        let bias = Tensor::rand_uniform(&[3], -0.5, 0.5, &mut rng);
        // Loss = sum of outputs, so grad_output is all ones.
        let out = conv2d(&input, &weight, Some(&bias), spec).unwrap();
        let grad_out = Tensor::ones(out.dims());
        let grads = conv2d_backward(&input, &weight, &grad_out, spec).unwrap();

        let eps = 1e-2f32;
        // Check a handful of input coordinates.
        for &flat in &[0usize, 7, 13, 24, 40] {
            let mut plus = input.clone();
            plus.data_mut()[flat] += eps;
            let mut minus = input.clone();
            minus.data_mut()[flat] -= eps;
            let f_plus = conv2d(&plus, &weight, Some(&bias), spec).unwrap().sum();
            let f_minus = conv2d(&minus, &weight, Some(&bias), spec).unwrap().sum();
            let numeric = (f_plus - f_minus) / (2.0 * eps);
            let analytic = grads.d_input.data()[flat];
            assert!(
                (numeric - analytic).abs() < 1e-2,
                "input grad mismatch at {flat}: {numeric} vs {analytic}"
            );
        }
        // Check a handful of weight coordinates.
        for &flat in &[0usize, 5, 11, 17, 35] {
            let mut plus = weight.clone();
            plus.data_mut()[flat] += eps;
            let mut minus = weight.clone();
            minus.data_mut()[flat] -= eps;
            let f_plus = conv2d(&input, &plus, Some(&bias), spec).unwrap().sum();
            let f_minus = conv2d(&input, &minus, Some(&bias), spec).unwrap().sum();
            let numeric = (f_plus - f_minus) / (2.0 * eps);
            let analytic = grads.d_weight.data()[flat];
            assert!(
                (numeric - analytic).abs() < 1e-2,
                "weight grad mismatch at {flat}: {numeric} vs {analytic}"
            );
        }
        // Bias gradient of a sum-loss equals the number of output pixels.
        let expected_bias = (out.len() / 3) as f32;
        for &b in grads.d_bias.data() {
            assert!((b - expected_bias).abs() < 1e-3);
        }
    }

    #[test]
    fn depthwise_identity_kernel_preserves_input() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let input = Tensor::rand_uniform(&[2, 3, 6, 6], -1.0, 1.0, &mut rng);
        // 3x3 kernels with a 1 in the centre = identity under "same" padding.
        let mut weight = Tensor::zeros(&[3, 3, 3]);
        for c in 0..3 {
            weight.set(&[c, 1, 1], 1.0).unwrap();
        }
        let out = depthwise_conv2d(&input, &weight, None, ConvSpec::same(3).unwrap()).unwrap();
        for (a, b) in out.data().iter().zip(input.data().iter()) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn depthwise_box_blur_averages_neighbours() {
        // Uniform input stays uniform under a normalized box kernel.
        let input = Tensor::full(&[1, 2, 5, 5], 3.0);
        let weight = Tensor::full(&[2, 3, 3], 1.0 / 9.0);
        let out = depthwise_conv2d(&input, &weight, None, ConvSpec::same(3).unwrap()).unwrap();
        // Centre pixels keep the value; border pixels shrink due to zero padding.
        assert!((out.get(&[0, 0, 2, 2]).unwrap() - 3.0).abs() < 1e-5);
        assert!(out.get(&[0, 0, 0, 0]).unwrap() < 3.0);
    }

    #[test]
    fn depthwise_fast_path_matches_naive_reference() {
        // The stride-1 shifted-row fast path and the general path must both
        // agree with the seed gather loop, including stride/padding edges.
        let mut rng = ChaCha8Rng::seed_from_u64(29);
        for &(stride, padding, k) in &[
            (1usize, 1usize, 3usize),
            (1, 2, 5),
            (1, 0, 3),
            (1, 3, 3),
            (2, 1, 3),
            (2, 2, 5),
            (3, 0, 3),
        ] {
            let spec = ConvSpec { stride, padding };
            let input = Tensor::rand_uniform(&[2, 3, 11, 9], -1.0, 1.0, &mut rng);
            let weight = Tensor::rand_uniform(&[3, k, k], -1.0, 1.0, &mut rng);
            let bias = Tensor::rand_uniform(&[3], -0.5, 0.5, &mut rng);
            if spec.output_extent(11, k).is_err() || spec.output_extent(9, k).is_err() {
                continue;
            }
            let fast = depthwise_conv2d(&input, &weight, Some(&bias), spec).unwrap();
            let slow =
                reference::depthwise_conv2d_naive(&input, &weight, Some(&bias), spec).unwrap();
            assert_eq!(fast.dims(), slow.dims());
            for (a, b) in fast.data().iter().zip(slow.data().iter()) {
                assert!(
                    (a - b).abs() < 1e-5,
                    "stride {stride} pad {padding} k {k}: {a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn depthwise_matches_grouped_standard_conv() {
        let mut rng = ChaCha8Rng::seed_from_u64(21);
        let input = Tensor::rand_uniform(&[1, 3, 7, 7], -1.0, 1.0, &mut rng);
        let dw = Tensor::rand_uniform(&[3, 3, 3], -1.0, 1.0, &mut rng);
        // Expand depthwise kernel into a block-diagonal standard kernel.
        let mut full = Tensor::zeros(&[3, 3, 3, 3]);
        for c in 0..3 {
            for ky in 0..3 {
                for kx in 0..3 {
                    full.set(&[c, c, ky, kx], dw.get(&[c, ky, kx]).unwrap())
                        .unwrap();
                }
            }
        }
        let spec = ConvSpec::same(3).unwrap();
        let a = depthwise_conv2d(&input, &dw, None, spec).unwrap();
        let b = conv2d(&input, &full, None, spec).unwrap();
        for (x, y) in a.data().iter().zip(b.data().iter()) {
            assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn depthwise_backward_matches_numerical_gradient() {
        let mut rng = ChaCha8Rng::seed_from_u64(33);
        let spec = ConvSpec::same(3).unwrap();
        let input = Tensor::rand_uniform(&[1, 2, 5, 5], -1.0, 1.0, &mut rng);
        let weight = Tensor::rand_uniform(&[2, 3, 3], -1.0, 1.0, &mut rng);
        let out = depthwise_conv2d(&input, &weight, None, spec).unwrap();
        let grad_out = Tensor::ones(out.dims());
        let grads = depthwise_conv2d_backward(&input, &weight, &grad_out, spec).unwrap();
        let eps = 1e-2f32;
        for &flat in &[0usize, 3, 10, 17] {
            let mut plus = weight.clone();
            plus.data_mut()[flat] += eps;
            let mut minus = weight.clone();
            minus.data_mut()[flat] -= eps;
            let f_plus = depthwise_conv2d(&input, &plus, None, spec).unwrap().sum();
            let f_minus = depthwise_conv2d(&input, &minus, None, spec).unwrap().sum();
            let numeric = (f_plus - f_minus) / (2.0 * eps);
            let analytic = grads.d_weight.data()[flat];
            assert!((numeric - analytic).abs() < 1e-2);
        }
        for &flat in &[0usize, 12, 30, 49] {
            let mut plus = input.clone();
            plus.data_mut()[flat] += eps;
            let mut minus = input.clone();
            minus.data_mut()[flat] -= eps;
            let f_plus = depthwise_conv2d(&plus, &weight, None, spec).unwrap().sum();
            let f_minus = depthwise_conv2d(&minus, &weight, None, spec).unwrap().sum();
            let numeric = (f_plus - f_minus) / (2.0 * eps);
            let analytic = grads.d_input.data()[flat];
            assert!((numeric - analytic).abs() < 1e-2);
        }
    }

    #[test]
    fn conv2d_input_grad_matches_full_backward_bitwise() {
        let mut rng = ChaCha8Rng::seed_from_u64(61);
        for &(stride, padding) in &[(1usize, 1usize), (2, 2), (1, 0), (3, 2)] {
            let spec = ConvSpec { stride, padding };
            let input = Tensor::rand_uniform(&[2, 3, 9, 8], -1.0, 1.0, &mut rng);
            let weight = Tensor::rand_uniform(&[4, 3, 3, 3], -1.0, 1.0, &mut rng);
            let out = conv2d(&input, &weight, None, spec).unwrap();
            let grad_out = Tensor::rand_uniform(out.dims(), -1.0, 1.0, &mut rng);
            let full = conv2d_backward(&input, &weight, &grad_out, spec).unwrap();
            let mut scratch = Scratch::new();
            let lean = conv2d_input_grad_with_scratch(
                &weight,
                &grad_out,
                input.dims(),
                spec,
                &mut scratch,
            )
            .unwrap();
            // Same GEMM + fold in the same order: bit identity, not tolerance.
            assert_eq!(lean, full.d_input, "stride {stride} pad {padding}");
            // Scratch reuse across calls must not change the result.
            let again = conv2d_input_grad_with_scratch(
                &weight,
                &grad_out,
                input.dims(),
                spec,
                &mut scratch,
            )
            .unwrap();
            assert_eq!(again, full.d_input);
        }
        // Shape validation.
        let weight = Tensor::zeros(&[2, 3, 3, 3]);
        let grad = Tensor::zeros(&[1, 2, 8, 8]);
        let mut scratch = Scratch::new();
        assert!(conv2d_input_grad_with_scratch(
            &weight,
            &grad,
            &[1, 3, 8, 8],
            ConvSpec::valid(),
            &mut scratch
        )
        .is_err());
        assert!(conv2d_input_grad_with_scratch(
            &weight,
            &grad,
            &[1, 3, 8],
            ConvSpec::same(3).unwrap(),
            &mut scratch
        )
        .is_err());
        assert!(conv2d_input_grad_with_scratch(
            &weight,
            &Tensor::zeros(&[1, 4, 8, 8]),
            &[1, 3, 8, 8],
            ConvSpec::same(3).unwrap(),
            &mut scratch
        )
        .is_err());
    }

    #[test]
    fn depthwise_input_grad_matches_full_backward_bitwise() {
        let mut rng = ChaCha8Rng::seed_from_u64(67);
        for &(stride, padding, k) in &[(1usize, 1usize, 3usize), (1, 2, 5), (2, 1, 3)] {
            let spec = ConvSpec { stride, padding };
            let input = Tensor::rand_uniform(&[2, 3, 11, 9], -1.0, 1.0, &mut rng);
            let weight = Tensor::rand_uniform(&[3, k, k], -1.0, 1.0, &mut rng);
            let out = depthwise_conv2d(&input, &weight, None, spec).unwrap();
            let grad_out = Tensor::rand_uniform(out.dims(), -1.0, 1.0, &mut rng);
            let full = depthwise_conv2d_backward(&input, &weight, &grad_out, spec).unwrap();
            let lean = depthwise_input_grad(&weight, &grad_out, input.dims(), spec).unwrap();
            assert_eq!(lean, full.d_input, "stride {stride} pad {padding} k {k}");
        }
        // Shape validation.
        let weight = Tensor::zeros(&[3, 3, 3]);
        assert!(depthwise_input_grad(
            &weight,
            &Tensor::zeros(&[1, 3, 8, 8]),
            &[1, 2, 8, 8],
            ConvSpec::same(3).unwrap()
        )
        .is_err());
        assert!(depthwise_input_grad(
            &weight,
            &Tensor::zeros(&[1, 3, 7, 7]),
            &[1, 3, 8, 8],
            ConvSpec::same(3).unwrap()
        )
        .is_err());
    }

    #[test]
    fn im2col_col2im_are_adjoint() {
        // <im2col(x), y> == <x, col2im(y)> for random x, y.
        let mut rng = ChaCha8Rng::seed_from_u64(77);
        let spec = ConvSpec {
            stride: 2,
            padding: 1,
        };
        let x = Tensor::rand_uniform(&[1, 2, 6, 6], -1.0, 1.0, &mut rng);
        let cols = im2col(&x, 3, 3, spec).unwrap();
        let y = Tensor::rand_uniform(cols.dims(), -1.0, 1.0, &mut rng);
        let lhs = cols.dot(&y).unwrap();
        let back = col2im(&y, &[1, 2, 6, 6], 3, 3, spec).unwrap();
        let rhs = x.dot(&back).unwrap();
        assert!((lhs - rhs).abs() < 1e-3, "{lhs} vs {rhs}");
    }

    #[test]
    fn shape_errors_are_reported() {
        let input = Tensor::zeros(&[1, 3, 8, 8]);
        let bad_weight = Tensor::zeros(&[2, 4, 3, 3]);
        assert!(conv2d(&input, &bad_weight, None, ConvSpec::valid()).is_err());
        let bad_bias = Tensor::zeros(&[3]);
        let weight = Tensor::zeros(&[2, 3, 3, 3]);
        assert!(conv2d(&input, &weight, Some(&bad_bias), ConvSpec::valid()).is_err());
        let dw_bad = Tensor::zeros(&[2, 3, 3]);
        assert!(depthwise_conv2d(&input, &dw_bad, None, ConvSpec::same(3).unwrap()).is_err());
    }
}
