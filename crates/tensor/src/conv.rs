use serde::{Deserialize, Serialize};

use crate::{matmul, matmul_transpose_a, matmul_transpose_b, Result, Tensor, TensorError};

/// Stride and zero-padding configuration for convolution and pooling.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ConvSpec {
    /// Stride applied to both spatial dimensions.
    pub stride: usize,
    /// Zero padding applied symmetrically to both spatial dimensions.
    pub padding: usize,
}

impl ConvSpec {
    /// Creates a spec with the given stride and padding.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidSpec`] when `stride == 0`.
    pub fn new(stride: usize, padding: usize) -> Result<Self> {
        if stride == 0 {
            return Err(TensorError::InvalidSpec("stride must be non-zero".into()));
        }
        Ok(ConvSpec { stride, padding })
    }

    /// A unit-stride spec whose padding keeps the spatial size unchanged for
    /// an odd `kernel` size ("same" convolution).
    pub fn same(kernel: usize) -> Self {
        ConvSpec {
            stride: 1,
            padding: kernel / 2,
        }
    }

    /// A unit-stride, zero-padding ("valid") spec.
    pub fn valid() -> Self {
        ConvSpec {
            stride: 1,
            padding: 0,
        }
    }

    /// Output spatial extent for an input extent and kernel extent.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidSpec`] if the kernel does not fit the
    /// padded input.
    pub fn output_extent(&self, input: usize, kernel: usize) -> Result<usize> {
        let padded = input + 2 * self.padding;
        if kernel == 0 || kernel > padded {
            return Err(TensorError::InvalidSpec(format!(
                "kernel {kernel} does not fit padded input {padded}"
            )));
        }
        Ok((padded - kernel) / self.stride + 1)
    }
}

impl Default for ConvSpec {
    fn default() -> Self {
        ConvSpec {
            stride: 1,
            padding: 0,
        }
    }
}

fn dims4(t: &Tensor) -> Result<(usize, usize, usize, usize)> {
    if t.shape().rank() != 4 {
        return Err(TensorError::RankMismatch {
            expected: 4,
            actual: t.shape().rank(),
        });
    }
    let d = t.dims();
    Ok((d[0], d[1], d[2], d[3]))
}

/// Unfolds an `[N, C, H, W]` input into an `[N*OH*OW, C*KH*KW]` patch matrix.
///
/// Out-of-bounds (padding) locations contribute zeros.
///
/// # Errors
///
/// Returns an error if the input is not rank 4 or the kernel does not fit.
pub fn im2col(input: &Tensor, kh: usize, kw: usize, spec: ConvSpec) -> Result<Tensor> {
    let (n, c, h, w) = dims4(input)?;
    let oh = spec.output_extent(h, kh)?;
    let ow = spec.output_extent(w, kw)?;
    let cols_rows = n * oh * ow;
    let cols_cols = c * kh * kw;
    let mut cols = vec![0.0f32; cols_rows * cols_cols];
    let data = input.data();
    let pad = spec.padding as isize;
    for ni in 0..n {
        for oy in 0..oh {
            for ox in 0..ow {
                let row = ((ni * oh + oy) * ow + ox) * cols_cols;
                let y0 = (oy * spec.stride) as isize - pad;
                let x0 = (ox * spec.stride) as isize - pad;
                for ci in 0..c {
                    let in_base = (ni * c + ci) * h * w;
                    let col_base = row + ci * kh * kw;
                    for ky in 0..kh {
                        let y = y0 + ky as isize;
                        if y < 0 || y >= h as isize {
                            continue;
                        }
                        let in_row = in_base + y as usize * w;
                        let col_row = col_base + ky * kw;
                        for kx in 0..kw {
                            let x = x0 + kx as isize;
                            if x < 0 || x >= w as isize {
                                continue;
                            }
                            cols[col_row + kx] = data[in_row + x as usize];
                        }
                    }
                }
            }
        }
    }
    Tensor::from_vec(cols, &[cols_rows, cols_cols])
}

/// Folds an `[N*OH*OW, C*KH*KW]` patch matrix back into an `[N, C, H, W]`
/// tensor by scatter-adding overlapping patches (the adjoint of [`im2col`]).
///
/// # Errors
///
/// Returns an error if the column matrix shape is inconsistent with the
/// target dimensions and spec.
pub fn col2im(
    cols: &Tensor,
    input_dims: &[usize],
    kh: usize,
    kw: usize,
    spec: ConvSpec,
) -> Result<Tensor> {
    if input_dims.len() != 4 {
        return Err(TensorError::RankMismatch {
            expected: 4,
            actual: input_dims.len(),
        });
    }
    let (n, c, h, w) = (input_dims[0], input_dims[1], input_dims[2], input_dims[3]);
    let oh = spec.output_extent(h, kh)?;
    let ow = spec.output_extent(w, kw)?;
    let cols_rows = n * oh * ow;
    let cols_cols = c * kh * kw;
    if cols.dims() != [cols_rows, cols_cols] {
        return Err(TensorError::ShapeMismatch {
            left: cols.dims().to_vec(),
            right: vec![cols_rows, cols_cols],
        });
    }
    let mut out = vec![0.0f32; n * c * h * w];
    let data = cols.data();
    let pad = spec.padding as isize;
    for ni in 0..n {
        for oy in 0..oh {
            for ox in 0..ow {
                let row = ((ni * oh + oy) * ow + ox) * cols_cols;
                let y0 = (oy * spec.stride) as isize - pad;
                let x0 = (ox * spec.stride) as isize - pad;
                for ci in 0..c {
                    let out_base = (ni * c + ci) * h * w;
                    let col_base = row + ci * kh * kw;
                    for ky in 0..kh {
                        let y = y0 + ky as isize;
                        if y < 0 || y >= h as isize {
                            continue;
                        }
                        let out_row = out_base + y as usize * w;
                        let col_row = col_base + ky * kw;
                        for kx in 0..kw {
                            let x = x0 + kx as isize;
                            if x < 0 || x >= w as isize {
                                continue;
                            }
                            out[out_row + x as usize] += data[col_row + kx];
                        }
                    }
                }
            }
        }
    }
    Tensor::from_vec(out, input_dims)
}

/// Gradients produced by [`conv2d_backward`].
#[derive(Debug, Clone)]
pub struct Conv2dGrads {
    /// Gradient with respect to the convolution input.
    pub d_input: Tensor,
    /// Gradient with respect to the filter weights.
    pub d_weight: Tensor,
    /// Gradient with respect to the bias (one entry per output channel).
    pub d_bias: Tensor,
}

/// Standard 2-D convolution.
///
/// * `input`:  `[N, C, H, W]`
/// * `weight`: `[F, C, KH, KW]`
/// * `bias`:   optional `[F]`
///
/// Returns `[N, F, OH, OW]`.
///
/// # Errors
///
/// Returns an error on rank/shape mismatches or if the kernel does not fit
/// the padded input.
pub fn conv2d(
    input: &Tensor,
    weight: &Tensor,
    bias: Option<&Tensor>,
    spec: ConvSpec,
) -> Result<Tensor> {
    let (n, c, h, w) = dims4(input)?;
    let (f, wc, kh, kw) = dims4(weight)?;
    if wc != c {
        return Err(TensorError::ShapeMismatch {
            left: vec![f, wc, kh, kw],
            right: vec![f, c, kh, kw],
        });
    }
    if let Some(b) = bias {
        if b.dims() != [f] {
            return Err(TensorError::ShapeMismatch {
                left: b.dims().to_vec(),
                right: vec![f],
            });
        }
    }
    let oh = spec.output_extent(h, kh)?;
    let ow = spec.output_extent(w, kw)?;
    let cols = im2col(input, kh, kw, spec)?;
    let wmat = weight.reshape(&[f, c * kh * kw])?;
    // [N*OH*OW, F]
    let prod = matmul_transpose_b(&cols, &wmat)?;
    let prod_data = prod.data();
    let mut out = vec![0.0f32; n * f * oh * ow];
    for ni in 0..n {
        for oy in 0..oh {
            for ox in 0..ow {
                let row = ((ni * oh + oy) * ow + ox) * f;
                for fi in 0..f {
                    let mut v = prod_data[row + fi];
                    if let Some(b) = bias {
                        v += b.data()[fi];
                    }
                    out[((ni * f + fi) * oh + oy) * ow + ox] = v;
                }
            }
        }
    }
    Tensor::from_vec(out, &[n, f, oh, ow])
}

/// Backward pass of [`conv2d`].
///
/// `grad_output` must be `[N, F, OH, OW]` matching the forward output.
///
/// # Errors
///
/// Returns an error on rank/shape mismatches.
pub fn conv2d_backward(
    input: &Tensor,
    weight: &Tensor,
    grad_output: &Tensor,
    spec: ConvSpec,
) -> Result<Conv2dGrads> {
    let (n, c, h, w) = dims4(input)?;
    let (f, _, kh, kw) = dims4(weight)?;
    let (gn, gf, oh, ow) = dims4(grad_output)?;
    let exp_oh = spec.output_extent(h, kh)?;
    let exp_ow = spec.output_extent(w, kw)?;
    if gn != n || gf != f || oh != exp_oh || ow != exp_ow {
        return Err(TensorError::ShapeMismatch {
            left: grad_output.dims().to_vec(),
            right: vec![n, f, exp_oh, exp_ow],
        });
    }

    // Reorder grad_output [N,F,OH,OW] -> [N*OH*OW, F].
    let g = grad_output.data();
    let mut gmat = vec![0.0f32; n * oh * ow * f];
    let mut d_bias = vec![0.0f32; f];
    for ni in 0..n {
        for fi in 0..f {
            for oy in 0..oh {
                for ox in 0..ow {
                    let v = g[((ni * f + fi) * oh + oy) * ow + ox];
                    gmat[((ni * oh + oy) * ow + ox) * f + fi] = v;
                    d_bias[fi] += v;
                }
            }
        }
    }
    let gmat = Tensor::from_vec(gmat, &[n * oh * ow, f])?;
    let cols = im2col(input, kh, kw, spec)?;
    // dW = gmatᵀ · cols : [F, C*KH*KW]
    let d_weight = matmul_transpose_a(&gmat, &cols)?.reshape(&[f, c, kh, kw])?;
    // dCols = gmat · wmat : [N*OH*OW, C*KH*KW]
    let wmat = weight.reshape(&[f, c * kh * kw])?;
    let d_cols = matmul(&gmat, &wmat)?;
    let d_input = col2im(&d_cols, &[n, c, h, w], kh, kw, spec)?;
    Ok(Conv2dGrads {
        d_input,
        d_weight,
        d_bias: Tensor::from_vec(d_bias, &[f])?,
    })
}

/// Gradients produced by [`depthwise_conv2d_backward`].
#[derive(Debug, Clone)]
pub struct DepthwiseGrads {
    /// Gradient with respect to the input.
    pub d_input: Tensor,
    /// Gradient with respect to the per-channel kernels (`[C, KH, KW]`).
    pub d_weight: Tensor,
    /// Gradient with respect to the per-channel bias (`[C]`).
    pub d_bias: Tensor,
}

/// Depthwise 2-D convolution: each channel is convolved with its own kernel.
///
/// * `input`:  `[N, C, H, W]`
/// * `weight`: `[C, KH, KW]`
/// * `bias`:   optional `[C]`
///
/// Returns `[N, C, OH, OW]`. This is the filtering layer BlurNet inserts
/// after the first convolution.
///
/// # Errors
///
/// Returns an error on rank/shape mismatches or if the kernel does not fit.
pub fn depthwise_conv2d(
    input: &Tensor,
    weight: &Tensor,
    bias: Option<&Tensor>,
    spec: ConvSpec,
) -> Result<Tensor> {
    let (n, c, h, w) = dims4(input)?;
    if weight.shape().rank() != 3 || weight.dims()[0] != c {
        return Err(TensorError::ShapeMismatch {
            left: weight.dims().to_vec(),
            right: vec![c, 0, 0],
        });
    }
    let (kh, kw) = (weight.dims()[1], weight.dims()[2]);
    if let Some(b) = bias {
        if b.dims() != [c] {
            return Err(TensorError::ShapeMismatch {
                left: b.dims().to_vec(),
                right: vec![c],
            });
        }
    }
    let oh = spec.output_extent(h, kh)?;
    let ow = spec.output_extent(w, kw)?;
    let mut out = vec![0.0f32; n * c * oh * ow];
    let data = input.data();
    let wdata = weight.data();
    let pad = spec.padding as isize;
    for ni in 0..n {
        for ci in 0..c {
            let in_base = (ni * c + ci) * h * w;
            let k_base = ci * kh * kw;
            let b = bias.map_or(0.0, |b| b.data()[ci]);
            for oy in 0..oh {
                let y0 = (oy * spec.stride) as isize - pad;
                for ox in 0..ow {
                    let x0 = (ox * spec.stride) as isize - pad;
                    let mut acc = b;
                    for ky in 0..kh {
                        let y = y0 + ky as isize;
                        if y < 0 || y >= h as isize {
                            continue;
                        }
                        let in_row = in_base + y as usize * w;
                        let k_row = k_base + ky * kw;
                        for kx in 0..kw {
                            let x = x0 + kx as isize;
                            if x < 0 || x >= w as isize {
                                continue;
                            }
                            acc += data[in_row + x as usize] * wdata[k_row + kx];
                        }
                    }
                    out[((ni * c + ci) * oh + oy) * ow + ox] = acc;
                }
            }
        }
    }
    Tensor::from_vec(out, &[n, c, oh, ow])
}

/// Backward pass of [`depthwise_conv2d`].
///
/// # Errors
///
/// Returns an error on rank/shape mismatches.
pub fn depthwise_conv2d_backward(
    input: &Tensor,
    weight: &Tensor,
    grad_output: &Tensor,
    spec: ConvSpec,
) -> Result<DepthwiseGrads> {
    let (n, c, h, w) = dims4(input)?;
    let (kh, kw) = (weight.dims()[1], weight.dims()[2]);
    let oh = spec.output_extent(h, kh)?;
    let ow = spec.output_extent(w, kw)?;
    if grad_output.dims() != [n, c, oh, ow] {
        return Err(TensorError::ShapeMismatch {
            left: grad_output.dims().to_vec(),
            right: vec![n, c, oh, ow],
        });
    }
    let mut d_input = vec![0.0f32; n * c * h * w];
    let mut d_weight = vec![0.0f32; c * kh * kw];
    let mut d_bias = vec![0.0f32; c];
    let x = input.data();
    let wd = weight.data();
    let g = grad_output.data();
    let pad = spec.padding as isize;
    for ni in 0..n {
        for ci in 0..c {
            let in_base = (ni * c + ci) * h * w;
            let k_base = ci * kh * kw;
            for oy in 0..oh {
                let y0 = (oy * spec.stride) as isize - pad;
                for ox in 0..ow {
                    let x0 = (ox * spec.stride) as isize - pad;
                    let go = g[((ni * c + ci) * oh + oy) * ow + ox];
                    if go == 0.0 {
                        continue;
                    }
                    d_bias[ci] += go;
                    for ky in 0..kh {
                        let y = y0 + ky as isize;
                        if y < 0 || y >= h as isize {
                            continue;
                        }
                        let in_row = in_base + y as usize * w;
                        let k_row = k_base + ky * kw;
                        for kx in 0..kw {
                            let x_pos = x0 + kx as isize;
                            if x_pos < 0 || x_pos >= w as isize {
                                continue;
                            }
                            let xi = in_row + x_pos as usize;
                            d_weight[k_row + kx] += go * x[xi];
                            d_input[xi] += go * wd[k_row + kx];
                        }
                    }
                }
            }
        }
    }
    Ok(DepthwiseGrads {
        d_input: Tensor::from_vec(d_input, &[n, c, h, w])?,
        d_weight: Tensor::from_vec(d_weight, &[c, kh, kw])?,
        d_bias: Tensor::from_vec(d_bias, &[c])?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    /// Direct (loop-based) reference convolution used to validate the
    /// im2col implementation.
    fn naive_conv2d(
        input: &Tensor,
        weight: &Tensor,
        bias: Option<&Tensor>,
        spec: ConvSpec,
    ) -> Tensor {
        let (n, c, h, w) = (
            input.dims()[0],
            input.dims()[1],
            input.dims()[2],
            input.dims()[3],
        );
        let (f, _, kh, kw) = (
            weight.dims()[0],
            weight.dims()[1],
            weight.dims()[2],
            weight.dims()[3],
        );
        let oh = spec.output_extent(h, kh).unwrap();
        let ow = spec.output_extent(w, kw).unwrap();
        let mut out = Tensor::zeros(&[n, f, oh, ow]);
        for ni in 0..n {
            for fi in 0..f {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut acc = bias.map_or(0.0, |b| b.data()[fi]);
                        for ci in 0..c {
                            for ky in 0..kh {
                                for kx in 0..kw {
                                    let y = (oy * spec.stride + ky) as isize - spec.padding as isize;
                                    let x = (ox * spec.stride + kx) as isize - spec.padding as isize;
                                    if y < 0 || y >= h as isize || x < 0 || x >= w as isize {
                                        continue;
                                    }
                                    acc += input.get(&[ni, ci, y as usize, x as usize]).unwrap()
                                        * weight.get(&[fi, ci, ky, kx]).unwrap();
                                }
                            }
                        }
                        out.set(&[ni, fi, oy, ox], acc).unwrap();
                    }
                }
            }
        }
        out
    }

    #[test]
    fn output_extent_math() {
        let s = ConvSpec::new(2, 1).unwrap();
        assert_eq!(s.output_extent(32, 5).unwrap(), 15);
        assert_eq!(ConvSpec::same(5).output_extent(32, 5).unwrap(), 32);
        assert_eq!(ConvSpec::valid().output_extent(32, 5).unwrap(), 28);
        assert!(ConvSpec::valid().output_extent(2, 5).is_err());
        assert!(ConvSpec::new(0, 0).is_err());
    }

    #[test]
    fn conv2d_matches_naive() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        for &(stride, padding) in &[(1usize, 0usize), (1, 2), (2, 1)] {
            let spec = ConvSpec { stride, padding };
            let input = Tensor::rand_uniform(&[2, 3, 9, 8], -1.0, 1.0, &mut rng);
            let weight = Tensor::rand_uniform(&[4, 3, 3, 3], -1.0, 1.0, &mut rng);
            let bias = Tensor::rand_uniform(&[4], -0.5, 0.5, &mut rng);
            let fast = conv2d(&input, &weight, Some(&bias), spec).unwrap();
            let slow = naive_conv2d(&input, &weight, Some(&bias), spec);
            assert_eq!(fast.dims(), slow.dims());
            for (a, b) in fast.data().iter().zip(slow.data().iter()) {
                assert!((a - b).abs() < 1e-4, "{a} vs {b}");
            }
        }
    }

    #[test]
    fn conv2d_identity_kernel_preserves_input() {
        // A 1x1 kernel of value 1 on a single channel is the identity.
        let input = Tensor::from_vec((0..16).map(|v| v as f32).collect(), &[1, 1, 4, 4]).unwrap();
        let weight = Tensor::ones(&[1, 1, 1, 1]);
        let out = conv2d(&input, &weight, None, ConvSpec::valid()).unwrap();
        assert_eq!(out.data(), input.data());
    }

    #[test]
    fn conv2d_backward_matches_numerical_gradient() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let spec = ConvSpec { stride: 1, padding: 1 };
        let input = Tensor::rand_uniform(&[1, 2, 5, 5], -1.0, 1.0, &mut rng);
        let weight = Tensor::rand_uniform(&[3, 2, 3, 3], -1.0, 1.0, &mut rng);
        let bias = Tensor::rand_uniform(&[3], -0.5, 0.5, &mut rng);
        // Loss = sum of outputs, so grad_output is all ones.
        let out = conv2d(&input, &weight, Some(&bias), spec).unwrap();
        let grad_out = Tensor::ones(out.dims());
        let grads = conv2d_backward(&input, &weight, &grad_out, spec).unwrap();

        let eps = 1e-2f32;
        // Check a handful of input coordinates.
        for &flat in &[0usize, 7, 13, 24, 40] {
            let mut plus = input.clone();
            plus.data_mut()[flat] += eps;
            let mut minus = input.clone();
            minus.data_mut()[flat] -= eps;
            let f_plus = conv2d(&plus, &weight, Some(&bias), spec).unwrap().sum();
            let f_minus = conv2d(&minus, &weight, Some(&bias), spec).unwrap().sum();
            let numeric = (f_plus - f_minus) / (2.0 * eps);
            let analytic = grads.d_input.data()[flat];
            assert!(
                (numeric - analytic).abs() < 1e-2,
                "input grad mismatch at {flat}: {numeric} vs {analytic}"
            );
        }
        // Check a handful of weight coordinates.
        for &flat in &[0usize, 5, 11, 17, 35] {
            let mut plus = weight.clone();
            plus.data_mut()[flat] += eps;
            let mut minus = weight.clone();
            minus.data_mut()[flat] -= eps;
            let f_plus = conv2d(&input, &plus, Some(&bias), spec).unwrap().sum();
            let f_minus = conv2d(&input, &minus, Some(&bias), spec).unwrap().sum();
            let numeric = (f_plus - f_minus) / (2.0 * eps);
            let analytic = grads.d_weight.data()[flat];
            assert!(
                (numeric - analytic).abs() < 1e-2,
                "weight grad mismatch at {flat}: {numeric} vs {analytic}"
            );
        }
        // Bias gradient of a sum-loss equals the number of output pixels.
        let expected_bias = (out.len() / 3) as f32;
        for &b in grads.d_bias.data() {
            assert!((b - expected_bias).abs() < 1e-3);
        }
    }

    #[test]
    fn depthwise_identity_kernel_preserves_input() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let input = Tensor::rand_uniform(&[2, 3, 6, 6], -1.0, 1.0, &mut rng);
        // 3x3 kernels with a 1 in the centre = identity under "same" padding.
        let mut weight = Tensor::zeros(&[3, 3, 3]);
        for c in 0..3 {
            weight.set(&[c, 1, 1], 1.0).unwrap();
        }
        let out = depthwise_conv2d(&input, &weight, None, ConvSpec::same(3)).unwrap();
        for (a, b) in out.data().iter().zip(input.data().iter()) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn depthwise_box_blur_averages_neighbours() {
        // Uniform input stays uniform under a normalized box kernel.
        let input = Tensor::full(&[1, 2, 5, 5], 3.0);
        let weight = Tensor::full(&[2, 3, 3], 1.0 / 9.0);
        let out = depthwise_conv2d(&input, &weight, None, ConvSpec::same(3)).unwrap();
        // Centre pixels keep the value; border pixels shrink due to zero padding.
        assert!((out.get(&[0, 0, 2, 2]).unwrap() - 3.0).abs() < 1e-5);
        assert!(out.get(&[0, 0, 0, 0]).unwrap() < 3.0);
    }

    #[test]
    fn depthwise_matches_grouped_standard_conv() {
        let mut rng = ChaCha8Rng::seed_from_u64(21);
        let input = Tensor::rand_uniform(&[1, 3, 7, 7], -1.0, 1.0, &mut rng);
        let dw = Tensor::rand_uniform(&[3, 3, 3], -1.0, 1.0, &mut rng);
        // Expand depthwise kernel into a block-diagonal standard kernel.
        let mut full = Tensor::zeros(&[3, 3, 3, 3]);
        for c in 0..3 {
            for ky in 0..3 {
                for kx in 0..3 {
                    full.set(&[c, c, ky, kx], dw.get(&[c, ky, kx]).unwrap())
                        .unwrap();
                }
            }
        }
        let spec = ConvSpec::same(3);
        let a = depthwise_conv2d(&input, &dw, None, spec).unwrap();
        let b = conv2d(&input, &full, None, spec).unwrap();
        for (x, y) in a.data().iter().zip(b.data().iter()) {
            assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn depthwise_backward_matches_numerical_gradient() {
        let mut rng = ChaCha8Rng::seed_from_u64(33);
        let spec = ConvSpec::same(3);
        let input = Tensor::rand_uniform(&[1, 2, 5, 5], -1.0, 1.0, &mut rng);
        let weight = Tensor::rand_uniform(&[2, 3, 3], -1.0, 1.0, &mut rng);
        let out = depthwise_conv2d(&input, &weight, None, spec).unwrap();
        let grad_out = Tensor::ones(out.dims());
        let grads = depthwise_conv2d_backward(&input, &weight, &grad_out, spec).unwrap();
        let eps = 1e-2f32;
        for &flat in &[0usize, 3, 10, 17] {
            let mut plus = weight.clone();
            plus.data_mut()[flat] += eps;
            let mut minus = weight.clone();
            minus.data_mut()[flat] -= eps;
            let f_plus = depthwise_conv2d(&input, &plus, None, spec).unwrap().sum();
            let f_minus = depthwise_conv2d(&input, &minus, None, spec).unwrap().sum();
            let numeric = (f_plus - f_minus) / (2.0 * eps);
            let analytic = grads.d_weight.data()[flat];
            assert!((numeric - analytic).abs() < 1e-2);
        }
        for &flat in &[0usize, 12, 30, 49] {
            let mut plus = input.clone();
            plus.data_mut()[flat] += eps;
            let mut minus = input.clone();
            minus.data_mut()[flat] -= eps;
            let f_plus = depthwise_conv2d(&plus, &weight, None, spec).unwrap().sum();
            let f_minus = depthwise_conv2d(&minus, &weight, None, spec).unwrap().sum();
            let numeric = (f_plus - f_minus) / (2.0 * eps);
            let analytic = grads.d_input.data()[flat];
            assert!((numeric - analytic).abs() < 1e-2);
        }
    }

    #[test]
    fn im2col_col2im_are_adjoint() {
        // <im2col(x), y> == <x, col2im(y)> for random x, y.
        let mut rng = ChaCha8Rng::seed_from_u64(77);
        let spec = ConvSpec { stride: 2, padding: 1 };
        let x = Tensor::rand_uniform(&[1, 2, 6, 6], -1.0, 1.0, &mut rng);
        let cols = im2col(&x, 3, 3, spec).unwrap();
        let y = Tensor::rand_uniform(cols.dims(), -1.0, 1.0, &mut rng);
        let lhs = cols.dot(&y).unwrap();
        let back = col2im(&y, &[1, 2, 6, 6], 3, 3, spec).unwrap();
        let rhs = x.dot(&back).unwrap();
        assert!((lhs - rhs).abs() < 1e-3, "{lhs} vs {rhs}");
    }

    #[test]
    fn shape_errors_are_reported() {
        let input = Tensor::zeros(&[1, 3, 8, 8]);
        let bad_weight = Tensor::zeros(&[2, 4, 3, 3]);
        assert!(conv2d(&input, &bad_weight, None, ConvSpec::valid()).is_err());
        let bad_bias = Tensor::zeros(&[3]);
        let weight = Tensor::zeros(&[2, 3, 3, 3]);
        assert!(conv2d(&input, &weight, Some(&bad_bias), ConvSpec::valid()).is_err());
        let dw_bad = Tensor::zeros(&[2, 3, 3]);
        assert!(depthwise_conv2d(&input, &dw_bad, None, ConvSpec::same(3)).is_err());
    }
}
