use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use crate::{Result, Tensor, TensorError};

/// Output elements below which pooling stays sequential.
const PAR_WORK: usize = 1 << 15;

/// Window size and stride for 2-D max pooling.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PoolSpec {
    /// Square window extent.
    pub window: usize,
    /// Stride applied to both spatial dimensions.
    pub stride: usize,
}

impl PoolSpec {
    /// Creates a pooling spec.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidSpec`] if either field is zero.
    pub fn new(window: usize, stride: usize) -> Result<Self> {
        if window == 0 || stride == 0 {
            return Err(TensorError::InvalidSpec(
                "pooling window and stride must be non-zero".into(),
            ));
        }
        Ok(PoolSpec { window, stride })
    }

    /// Output extent for an input extent.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidSpec`] if the window exceeds the input.
    pub fn output_extent(&self, input: usize) -> Result<usize> {
        if self.window > input {
            return Err(TensorError::InvalidSpec(format!(
                "pool window {} exceeds input extent {input}",
                self.window
            )));
        }
        Ok((input - self.window) / self.stride + 1)
    }
}

/// Output of [`max_pool2d`]: pooled values and argmax indices for backward.
#[derive(Debug, Clone)]
pub struct MaxPoolOutput {
    /// Pooled activations `[N, C, OH, OW]`.
    pub output: Tensor,
    /// Flat input index of the maximum for every output element.
    pub argmax: Vec<usize>,
}

/// 2-D max pooling over an `[N, C, H, W]` tensor.
///
/// # Errors
///
/// Returns an error if the input is not rank 4 or the window does not fit.
pub fn max_pool2d(input: &Tensor, spec: PoolSpec) -> Result<MaxPoolOutput> {
    if input.shape().rank() != 4 {
        return Err(TensorError::RankMismatch {
            expected: 4,
            actual: input.shape().rank(),
        });
    }
    let d = input.dims();
    let (n, c, h, w) = (d[0], d[1], d[2], d[3]);
    let oh = spec.output_extent(h)?;
    let ow = spec.output_extent(w)?;
    let mut out = vec![0.0f32; n * c * oh * ow];
    let mut argmax = vec![0usize; n * c * oh * ow];
    let data = input.data();

    // One (image, channel) plane per task: the output and argmax chunks are
    // disjoint, so planes pool rayon-parallel once the batch is large enough.
    let plane = |pi: usize, (out_plane, arg_plane): (&mut [f32], &mut [usize])| {
        let base = pi * h * w;
        for oy in 0..oh {
            for ox in 0..ow {
                let mut best = f32::NEG_INFINITY;
                let mut best_idx = base;
                for ky in 0..spec.window {
                    for kx in 0..spec.window {
                        let y = oy * spec.stride + ky;
                        let x = ox * spec.stride + kx;
                        let idx = base + y * w + x;
                        if data[idx] > best {
                            best = data[idx];
                            best_idx = idx;
                        }
                    }
                }
                out_plane[oy * ow + ox] = best;
                arg_plane[oy * ow + ox] = best_idx;
            }
        }
    };
    if out.len() * spec.window * spec.window < PAR_WORK || rayon::current_num_threads() <= 1 {
        for (pi, pair) in out
            .chunks_mut(oh * ow)
            .zip(argmax.chunks_mut(oh * ow))
            .enumerate()
        {
            plane(pi, pair);
        }
    } else {
        out.par_chunks_mut(oh * ow)
            .zip(argmax.par_chunks_mut(oh * ow))
            .enumerate()
            .for_each(|(pi, pair)| plane(pi, pair));
    }
    Ok(MaxPoolOutput {
        output: Tensor::from_vec(out, &[n, c, oh, ow])?,
        argmax,
    })
}

/// Backward pass of [`max_pool2d`]: routes each output gradient to the input
/// position that produced the maximum.
///
/// # Errors
///
/// Returns an error if `grad_output` does not match the recorded pooling
/// output shape, or [`TensorError::IndexOutOfBounds`] if a recorded argmax
/// index falls outside `input_dims` (a stale or corrupted argmax recording
/// — e.g. one captured against different input dimensions).
pub fn max_pool2d_backward(
    grad_output: &Tensor,
    argmax: &[usize],
    input_dims: &[usize],
) -> Result<Tensor> {
    if grad_output.len() != argmax.len() {
        return Err(TensorError::ShapeMismatch {
            left: vec![grad_output.len()],
            right: vec![argmax.len()],
        });
    }
    let mut d_input = Tensor::zeros(input_dims);
    let g = grad_output.data();
    let d = d_input.data_mut();
    let len = d.len();
    for (i, &src) in argmax.iter().enumerate() {
        *d.get_mut(src)
            .ok_or(TensorError::IndexOutOfBounds { index: src, len })? += g[i];
    }
    Ok(d_input)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_spec_validation() {
        assert!(PoolSpec::new(2, 2).is_ok());
        assert!(PoolSpec::new(0, 2).is_err());
        assert!(PoolSpec::new(2, 0).is_err());
        assert!(PoolSpec::new(4, 1).unwrap().output_extent(3).is_err());
    }

    #[test]
    fn max_pool_known_values() {
        let input = Tensor::from_vec(
            vec![
                1.0, 2.0, 5.0, 6.0, //
                3.0, 4.0, 7.0, 8.0, //
                9.0, 10.0, 13.0, 14.0, //
                11.0, 12.0, 15.0, 16.0,
            ],
            &[1, 1, 4, 4],
        )
        .unwrap();
        let spec = PoolSpec::new(2, 2).unwrap();
        let pooled = max_pool2d(&input, spec).unwrap();
        assert_eq!(pooled.output.dims(), &[1, 1, 2, 2]);
        assert_eq!(pooled.output.data(), &[4.0, 8.0, 12.0, 16.0]);
    }

    #[test]
    fn max_pool_backward_routes_to_argmax() {
        let input = Tensor::from_vec(
            vec![
                1.0, 2.0, 5.0, 6.0, //
                3.0, 4.0, 7.0, 8.0, //
                9.0, 10.0, 13.0, 14.0, //
                11.0, 12.0, 15.0, 16.0,
            ],
            &[1, 1, 4, 4],
        )
        .unwrap();
        let spec = PoolSpec::new(2, 2).unwrap();
        let pooled = max_pool2d(&input, spec).unwrap();
        let grad = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 1, 2, 2]).unwrap();
        let d_input = max_pool2d_backward(&grad, &pooled.argmax, input.dims()).unwrap();
        // Gradient must land exactly on the max positions (values 4, 8, 12, 16).
        assert_eq!(d_input.get(&[0, 0, 1, 1]).unwrap(), 1.0);
        assert_eq!(d_input.get(&[0, 0, 1, 3]).unwrap(), 2.0);
        assert_eq!(d_input.get(&[0, 0, 3, 1]).unwrap(), 3.0);
        assert_eq!(d_input.get(&[0, 0, 3, 3]).unwrap(), 4.0);
        assert_eq!(d_input.sum(), 10.0);
    }

    #[test]
    fn max_pool_backward_rejects_out_of_bounds_argmax() {
        // An argmax recorded against a larger input must not scatter past
        // the end of the gradient buffer.
        let grad = Tensor::from_vec(vec![1.0], &[1, 1, 1, 1]).unwrap();
        let err = max_pool2d_backward(&grad, &[16], &[1, 1, 2, 2]).unwrap_err();
        assert_eq!(err, TensorError::IndexOutOfBounds { index: 16, len: 4 });
    }

    #[test]
    fn max_pool_requires_rank4() {
        let input = Tensor::zeros(&[4, 4]);
        assert!(max_pool2d(&input, PoolSpec::new(2, 2).unwrap()).is_err());
    }
}
