//! Property-based tests for the tensor persistence layer: every
//! ChaCha8-seeded tensor must survive `tensor_to_bytes` →
//! `tensor_from_bytes` **bit-identically** (shape and every `f32` payload
//! bit), foreign strided layouts must gather into the same row-major
//! bytes, the checksummed file container must reject every single-byte
//! flip, and truncation at any prefix length must be a typed error —
//! never a panic or a silently wrong tensor.

use blurnet_tensor::persist::{
    frame, tensor_from_bytes, tensor_to_bytes, unframe, write_tensor_strided,
};
use blurnet_tensor::{Tensor, TensorError};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Random rank-1..4 dims with a bounded volume, drawn from a seeded RNG
/// so failures replay exactly.
fn seeded_tensor(seed: u64, rank: usize, max_dim: usize) -> Tensor {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    use rand::Rng;
    let dims: Vec<usize> = (0..rank).map(|_| rng.gen_range(1..=max_dim)).collect();
    Tensor::rand_uniform(&dims, -100.0, 100.0, &mut rng)
}

fn assert_bitwise_equal(a: &Tensor, b: &Tensor) {
    assert_eq!(a.dims(), b.dims());
    for (x, y) in a.data().iter().zip(b.data()) {
        assert_eq!(x.to_bits(), y.to_bits());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// save → load is bit-identical for every seeded shape, including the
    /// subnormals/extremes `rand_uniform` never produces.
    #[test]
    fn roundtrip_is_bit_identical(seed in 0u64..1024, rank in 1usize..5) {
        let t = seeded_tensor(seed, rank, 7);
        let restored = tensor_from_bytes(&tensor_to_bytes(&t)).unwrap();
        prop_assert_eq!(restored.dims(), t.dims());
        for (x, y) in restored.data().iter().zip(t.data()) {
            prop_assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    /// The container survives framing and rejects a flip of ANY byte —
    /// header, payload or checksum.
    #[test]
    fn any_flipped_byte_is_caught(seed in 0u64..256, flip in 0usize..4096) {
        let payload = tensor_to_bytes(&seeded_tensor(seed, 3, 5));
        let mut framed = frame(&payload);
        prop_assert_eq!(unframe(&framed).unwrap(), payload.as_slice());
        let at = flip % framed.len();
        framed[at] ^= 0x01;
        prop_assert!(unframe(&framed).is_err(), "flip at byte {} went undetected", at);
    }

    /// Truncating the framed container at any length is a typed error.
    #[test]
    fn truncation_is_typed_never_a_panic(seed in 0u64..256, cut in 0usize..4096) {
        let framed = frame(&tensor_to_bytes(&seeded_tensor(seed, 2, 6)));
        let at = cut % framed.len();
        match unframe(&framed[..at]) {
            Err(TensorError::Truncated { .. })
            | Err(TensorError::WrongMagic { .. })
            | Err(TensorError::ChecksumMismatch { .. }) => {}
            other => prop_assert!(false, "truncation at {} produced {:?}", at, other),
        }
    }

    /// A transposed (column-major) record gathers into the exact same
    /// row-major bytes the canonical writer would emit.
    #[test]
    fn transposed_layouts_gather_into_row_major(seed in 0u64..512, rows in 1usize..8, cols in 1usize..8) {
        let t = {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            Tensor::rand_uniform(&[rows, cols], -10.0, 10.0, &mut rng)
        };
        // Store the logical [rows, cols] tensor column-major: element
        // (i, j) at payload position j*rows + i.
        let mut col_major = vec![0.0f32; rows * cols];
        for i in 0..rows {
            for j in 0..cols {
                col_major[j * rows + i] = t.data()[i * cols + j];
            }
        }
        let mut buf = Vec::new();
        write_tensor_strided(&mut buf, &col_major, &[rows, cols], &[1, rows]).unwrap();
        let gathered = tensor_from_bytes(&buf).unwrap();
        prop_assert_eq!(gathered.dims(), t.dims());
        for (x, y) in gathered.data().iter().zip(t.data()) {
            prop_assert_eq!(x.to_bits(), y.to_bits());
        }
        // And the canonical re-serialization is byte-identical to the
        // row-major writer's output.
        prop_assert_eq!(tensor_to_bytes(&gathered), tensor_to_bytes(&t));
    }

    /// Padded-row layouts (stride wider than the row) also gather
    /// losslessly.
    #[test]
    fn padded_rows_gather_losslessly(seed in 0u64..512, rows in 1usize..6, cols in 1usize..6, pad in 1usize..4) {
        let t = {
            let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x9E37);
            Tensor::rand_uniform(&[rows, cols], -10.0, 10.0, &mut rng)
        };
        let row_stride = cols + pad;
        let mut padded = vec![f32::NAN; rows * row_stride];
        for i in 0..rows {
            padded[i * row_stride..i * row_stride + cols]
                .copy_from_slice(&t.data()[i * cols..(i + 1) * cols]);
        }
        let mut buf = Vec::new();
        write_tensor_strided(&mut buf, &padded, &[rows, cols], &[row_stride, 1]).unwrap();
        let gathered = tensor_from_bytes(&buf).unwrap();
        for (x, y) in gathered.data().iter().zip(t.data()) {
            prop_assert_eq!(x.to_bits(), y.to_bits());
        }
    }
}

/// Non-finite payloads (NaN, ±inf, -0.0) round-trip with their exact bit
/// patterns — serde must never normalize floats.
#[test]
fn non_finite_values_keep_their_bits() {
    let specials = vec![
        f32::NAN,
        f32::INFINITY,
        f32::NEG_INFINITY,
        -0.0,
        f32::MIN_POSITIVE,
        f32::from_bits(0x0000_0001), // smallest subnormal
        f32::MAX,
    ];
    let t = Tensor::from_vec(specials.clone(), &[specials.len()]).unwrap();
    let restored = tensor_from_bytes(&tensor_to_bytes(&t)).unwrap();
    assert_bitwise_equal(&restored, &t);
}
