//! Property-based tests for the tensor substrate.

use blurnet_tensor::{
    col2im, conv2d, depthwise_conv2d, im2col, matmul, matmul_transpose_a, matmul_transpose_b,
    reference, ConvSpec, Tensor,
};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn tensor_strategy(len: usize) -> impl Strategy<Value = Vec<f32>> {
    proptest::collection::vec(-10.0f32..10.0, len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Addition is commutative and subtraction is its inverse.
    #[test]
    fn add_commutative_sub_inverse(data_a in tensor_strategy(24), data_b in tensor_strategy(24)) {
        let a = Tensor::from_vec(data_a, &[2, 3, 4]).unwrap();
        let b = Tensor::from_vec(data_b, &[2, 3, 4]).unwrap();
        let ab = a.add(&b).unwrap();
        let ba = b.add(&a).unwrap();
        for (x, y) in ab.data().iter().zip(ba.data().iter()) {
            prop_assert!((x - y).abs() < 1e-5);
        }
        let back = ab.sub(&b).unwrap();
        for (x, y) in back.data().iter().zip(a.data().iter()) {
            prop_assert!((x - y).abs() < 1e-4);
        }
    }

    /// Scaling by s then 1/s returns the original (away from zero).
    #[test]
    fn scale_roundtrip(data in tensor_strategy(16), s in 0.5f32..4.0) {
        let t = Tensor::from_vec(data, &[4, 4]).unwrap();
        let round = t.scale(s).scale(1.0 / s);
        for (x, y) in round.data().iter().zip(t.data().iter()) {
            prop_assert!((x - y).abs() < 1e-4);
        }
    }

    /// The L2 norm satisfies the triangle inequality and absolute homogeneity.
    #[test]
    fn l2_norm_properties(data_a in tensor_strategy(12), data_b in tensor_strategy(12), s in -3.0f32..3.0) {
        let a = Tensor::from_vec(data_a, &[12]).unwrap();
        let b = Tensor::from_vec(data_b, &[12]).unwrap();
        let sum = a.add(&b).unwrap();
        prop_assert!(sum.l2_norm() <= a.l2_norm() + b.l2_norm() + 1e-4);
        prop_assert!((a.scale(s).l2_norm() - s.abs() * a.l2_norm()).abs() < 1e-3);
    }

    /// Matrix multiplication distributes over addition.
    #[test]
    fn matmul_distributes(a in tensor_strategy(12), b in tensor_strategy(20), c in tensor_strategy(20)) {
        let a = Tensor::from_vec(a, &[3, 4]).unwrap();
        let b = Tensor::from_vec(b, &[4, 5]).unwrap();
        let c = Tensor::from_vec(c, &[4, 5]).unwrap();
        let lhs = matmul(&a, &b.add(&c).unwrap()).unwrap();
        let rhs = matmul(&a, &b).unwrap().add(&matmul(&a, &c).unwrap()).unwrap();
        for (x, y) in lhs.data().iter().zip(rhs.data().iter()) {
            prop_assert!((x - y).abs() < 1e-2);
        }
    }

    /// `matmul_transpose_a` and `matmul_transpose_b` agree with explicit matmul.
    #[test]
    fn transpose_matmul_consistency(a in tensor_strategy(12), b in tensor_strategy(15)) {
        // a: [3,4] viewed also as [4,3] transposed operand; b: [3,5]
        let a_t = Tensor::from_vec(a.clone(), &[3, 4]).unwrap();
        let b_m = Tensor::from_vec(b, &[3, 5]).unwrap();
        let via_ta = matmul_transpose_a(&a_t, &b_m).unwrap();
        // Build explicit transpose of a.
        let mut at = Tensor::zeros(&[4, 3]);
        for i in 0..3 {
            for j in 0..4 {
                at.set(&[j, i], a_t.get(&[i, j]).unwrap()).unwrap();
            }
        }
        let direct = matmul(&at, &b_m).unwrap();
        for (x, y) in via_ta.data().iter().zip(direct.data().iter()) {
            prop_assert!((x - y).abs() < 1e-3);
        }
        // a · aᵀ computed via the transpose-b helper vs an explicit transpose.
        let via_tb = matmul_transpose_b(&a_t, &a_t).unwrap();
        let direct2 = matmul(&a_t, &at).unwrap();
        for (x, y) in via_tb.data().iter().zip(direct2.data().iter()) {
            prop_assert!((x - y).abs() < 1e-3);
        }
    }

    /// im2col followed by col2im is the adjoint pair: <im2col(x), y> == <x, col2im(y)>.
    #[test]
    fn im2col_col2im_adjoint(data in tensor_strategy(72), stride in 1usize..3, padding in 0usize..2) {
        let x = Tensor::from_vec(data, &[1, 2, 6, 6]).unwrap();
        let spec = ConvSpec { stride, padding };
        if spec.output_extent(6, 3).is_err() {
            return Ok(());
        }
        let cols = im2col(&x, 3, 3, spec).unwrap();
        let y = Tensor::ones(cols.dims());
        let lhs = cols.dot(&y).unwrap();
        let back = col2im(&y, &[1, 2, 6, 6], 3, 3, spec).unwrap();
        let rhs = x.dot(&back).unwrap();
        prop_assert!((lhs - rhs).abs() < 1e-2);
    }

    /// Convolution is linear in its input.
    #[test]
    fn conv_is_linear(a in tensor_strategy(48), b in tensor_strategy(48), w in tensor_strategy(18), alpha in -2.0f32..2.0) {
        let x1 = Tensor::from_vec(a, &[1, 3, 4, 4]).unwrap();
        let x2 = Tensor::from_vec(b, &[1, 3, 4, 4]).unwrap();
        let weight = Tensor::from_vec(w, &[2, 3, 1, 3]).unwrap().reshape(&[2, 3, 3, 1]).unwrap();
        let spec = ConvSpec::valid();
        let combo = x1.scale(alpha).add(&x2).unwrap();
        let lhs = conv2d(&combo, &weight, None, spec).unwrap();
        let rhs = conv2d(&x1, &weight, None, spec).unwrap().scale(alpha)
            .add(&conv2d(&x2, &weight, None, spec).unwrap()).unwrap();
        for (x, y) in lhs.data().iter().zip(rhs.data().iter()) {
            prop_assert!((x - y).abs() < 1e-2);
        }
    }

    /// stack/batch_item round-trips.
    #[test]
    fn stack_batch_item_roundtrip(a in tensor_strategy(12), b in tensor_strategy(12)) {
        let t1 = Tensor::from_vec(a, &[3, 4]).unwrap();
        let t2 = Tensor::from_vec(b, &[3, 4]).unwrap();
        let s = Tensor::stack(&[t1.clone(), t2.clone()]).unwrap();
        prop_assert_eq!(s.batch_item(0).unwrap(), t1);
        prop_assert_eq!(s.batch_item(1).unwrap(), t2);
    }

    /// The blocked/register-tiled GEMM agrees with the seed scalar
    /// implementation within 1e-5 on ChaCha8-seeded random matrices whose
    /// shapes straddle the tile and panel boundaries.
    #[test]
    fn blocked_gemm_matches_seed_reference(
        seed in 0u64..64,
        m in 1usize..70,
        k in 1usize..90,
        n in 1usize..70,
    ) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let a = Tensor::rand_uniform(&[m, k], -1.0, 1.0, &mut rng);
        let b = Tensor::rand_uniform(&[k, n], -1.0, 1.0, &mut rng);
        let fast = matmul(&a, &b).unwrap();
        let slow = reference::matmul_naive(&a, &b).unwrap();
        for (x, y) in fast.data().iter().zip(slow.data().iter()) {
            prop_assert!(
                (x - y).abs() < 1e-5 * (1.0 + y.abs()),
                "({}, {}, {}): {} vs {}", m, k, n, x, y
            );
        }
    }

    /// The packed transpose variants agree with transpose-then-multiply
    /// through the seed reference.
    #[test]
    fn transpose_gemms_match_seed_reference(seed in 0u64..48, m in 1usize..30, k in 1usize..40, n in 1usize..30) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xA5A5);
        // aᵀ·b with a stored [k, m].
        let a = Tensor::rand_uniform(&[k, m], -1.0, 1.0, &mut rng);
        let b = Tensor::rand_uniform(&[k, n], -1.0, 1.0, &mut rng);
        let mut at = Tensor::zeros(&[m, k]);
        for i in 0..k {
            for j in 0..m {
                at.set(&[j, i], a.get(&[i, j]).unwrap()).unwrap();
            }
        }
        let fast = matmul_transpose_a(&a, &b).unwrap();
        let slow = reference::matmul_naive(&at, &b).unwrap();
        for (x, y) in fast.data().iter().zip(slow.data().iter()) {
            prop_assert!((x - y).abs() < 1e-5 * (1.0 + y.abs()), "{} vs {}", x, y);
        }
        // a·bᵀ with b stored [n, k].
        let c = Tensor::rand_uniform(&[m, k], -1.0, 1.0, &mut rng);
        let d = Tensor::rand_uniform(&[n, k], -1.0, 1.0, &mut rng);
        let mut dt = Tensor::zeros(&[k, n]);
        for i in 0..n {
            for j in 0..k {
                dt.set(&[j, i], d.get(&[i, j]).unwrap()).unwrap();
            }
        }
        let fast = matmul_transpose_b(&c, &d).unwrap();
        let slow = reference::matmul_naive(&c, &dt).unwrap();
        for (x, y) in fast.data().iter().zip(slow.data().iter()) {
            prop_assert!((x - y).abs() < 1e-5 * (1.0 + y.abs()), "{} vs {}", x, y);
        }
    }

    /// The direct (im2col-free) depthwise fast path agrees with the seed
    /// gather loop within 1e-5 across stride/padding/kernel combinations,
    /// including padding wider than the kernel overhang.
    #[test]
    fn depthwise_fast_path_matches_seed_reference(
        seed in 0u64..48,
        stride in 1usize..4,
        padding in 0usize..4,
        kernel in prop_oneof![Just(1usize), Just(3), Just(5)],
        h in 5usize..12,
        w in 5usize..12,
    ) {
        let spec = ConvSpec { stride, padding };
        if spec.output_extent(h, kernel).is_err() || spec.output_extent(w, kernel).is_err() {
            return Ok(());
        }
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x5A5A);
        let input = Tensor::rand_uniform(&[2, 3, h, w], -1.0, 1.0, &mut rng);
        let weight = Tensor::rand_uniform(&[3, kernel, kernel], -1.0, 1.0, &mut rng);
        let bias = Tensor::rand_uniform(&[3], -0.5, 0.5, &mut rng);
        let fast = depthwise_conv2d(&input, &weight, Some(&bias), spec).unwrap();
        let slow = reference::depthwise_conv2d_naive(&input, &weight, Some(&bias), spec).unwrap();
        prop_assert_eq!(fast.dims(), slow.dims());
        for (x, y) in fast.data().iter().zip(slow.data().iter()) {
            prop_assert!(
                (x - y).abs() < 1e-5,
                "stride {} pad {} k {}: {} vs {}", stride, padding, kernel, x, y
            );
        }
    }
}
