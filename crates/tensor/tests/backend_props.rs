//! Cross-dispatch property tests for the [`Backend`] trait.
//!
//! Every trait entry point is driven twice on identical ChaCha8-seeded
//! operands — once through a forced-scalar [`CpuBackend`] and once through
//! the detected backend (AVX2+FMA where the host supports it) — and the
//! outputs are compared **bit-for-bit**. Both tiers round every
//! multiply-add once (the scalar kernels use `f32::mul_add`, which is
//! required to be correctly rounded), so dispatch must never change a
//! single bit of any result: golden files, cache keys and crash-recovery
//! journals stay valid across machines.
//!
//! A second family of properties pins the dispatched results against the
//! naive seed kernels within `1e-5`, so the tiers cannot drift together.

use blurnet_tensor::{
    reference, Backend, ConvSpec, CpuBackend, PackedConvWeights, PoolSpec, Scratch, SimdTier,
    Tensor,
};
use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// The two dispatch tiers under comparison: forced-scalar and whatever the
/// host detects (scalar again on non-x86 hosts, which makes every property
/// a cheap self-comparison rather than a failure).
fn tiers() -> (CpuBackend, CpuBackend) {
    (CpuBackend::with_tier(SimdTier::Scalar), CpuBackend::new())
}

fn rand_tensor(rng: &mut ChaCha8Rng, dims: &[usize]) -> Tensor {
    let len = dims.iter().product();
    let data: Vec<f32> = (0..len).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
    Tensor::from_vec(data, dims).expect("dims match data")
}

/// Asserts bit equality, the contract that makes dispatch invisible.
fn assert_bits_equal(scalar: &Tensor, simd: &Tensor, what: &str) -> Result<(), TestCaseError> {
    prop_assert_eq!(scalar.dims(), simd.dims(), "{} dims", what);
    for (i, (a, b)) in scalar.data().iter().zip(simd.data().iter()).enumerate() {
        prop_assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "{}: scalar {} != simd {} at flat index {}",
            what,
            a,
            b,
            i
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `matmul` and both transposed variants are bit-identical across
    /// tiers and within 1e-5 of the naive seed GEMM.
    #[test]
    fn matmul_family_cross_dispatch(seed in 0u64..1_000_000, m in 1usize..12, k in 1usize..12, n in 1usize..12) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let (scalar, simd) = tiers();
        let a = rand_tensor(&mut rng, &[m, k]);
        let b = rand_tensor(&mut rng, &[k, n]);

        let s = scalar.matmul(&a, &b).unwrap();
        let v = simd.matmul(&a, &b).unwrap();
        assert_bits_equal(&s, &v, "matmul")?;
        let naive = reference::matmul_naive(&a, &b).unwrap();
        for (x, y) in v.data().iter().zip(naive.data().iter()) {
            prop_assert!((x - y).abs() < 1e-5 * (1.0 + y.abs()), "{} vs naive {}", x, y);
        }

        // Aᵀ variant: a is stored [k, m] and multiplied as aᵀ · b.
        let at = rand_tensor(&mut rng, &[k, m]);
        assert_bits_equal(
            &scalar.matmul_transpose_a(&at, &b).unwrap(),
            &simd.matmul_transpose_a(&at, &b).unwrap(),
            "matmul_transpose_a",
        )?;

        // Bᵀ variant: b is stored [n, k] and multiplied as a · bᵀ.
        let bt = rand_tensor(&mut rng, &[n, k]);
        assert_bits_equal(
            &scalar.matmul_transpose_b(&a, &bt, &mut Scratch::new()).unwrap(),
            &simd.matmul_transpose_b(&a, &bt, &mut Scratch::new()).unwrap(),
            "matmul_transpose_b",
        )?;
    }

    /// The full convolution surface — forward (plain and prepacked),
    /// backward, and both input-gradient paths — is bit-identical across
    /// tiers for every stride/padding/kernel combination.
    #[test]
    fn conv2d_family_cross_dispatch(
        seed in 0u64..1_000_000,
        n in 1usize..3,
        c in 1usize..4,
        f in 1usize..5,
        k in 1usize..4,
        stride in 1usize..3,
        pad in 0usize..2,
        hw in 4usize..9,
    ) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let (scalar, simd) = tiers();
        let spec = ConvSpec { stride, padding: pad };
        if spec.output_extent(hw, k).is_err() {
            return Ok(());
        }
        let input = rand_tensor(&mut rng, &[n, c, hw, hw]);
        let weight = rand_tensor(&mut rng, &[f, c, k, k]);
        let bias = rand_tensor(&mut rng, &[f]);

        let fwd_s = scalar.conv2d(&input, &weight, Some(&bias), spec, &mut Scratch::new()).unwrap();
        let fwd_v = simd.conv2d(&input, &weight, Some(&bias), spec, &mut Scratch::new()).unwrap();
        assert_bits_equal(&fwd_s, &fwd_v, "conv2d")?;

        let packed = PackedConvWeights::pack(&weight).unwrap();
        assert_bits_equal(
            &scalar.conv2d_prepacked(&input, &packed, Some(&bias), spec, &mut Scratch::new()).unwrap(),
            &simd.conv2d_prepacked(&input, &packed, Some(&bias), spec, &mut Scratch::new()).unwrap(),
            "conv2d_prepacked",
        )?;

        let grad = rand_tensor(&mut rng, fwd_s.dims());
        let back_s = scalar.conv2d_backward(&input, &weight, &grad, spec, &mut Scratch::new()).unwrap();
        let back_v = simd.conv2d_backward(&input, &weight, &grad, spec, &mut Scratch::new()).unwrap();
        assert_bits_equal(&back_s.d_input, &back_v.d_input, "conv2d_backward.d_input")?;
        assert_bits_equal(&back_s.d_weight, &back_v.d_weight, "conv2d_backward.d_weight")?;
        assert_bits_equal(&back_s.d_bias, &back_v.d_bias, "conv2d_backward.d_bias")?;

        let dims = input.dims();
        assert_bits_equal(
            &scalar.conv2d_input_grad(&weight, &grad, dims, spec, &mut Scratch::new()).unwrap(),
            &simd.conv2d_input_grad(&weight, &grad, dims, spec, &mut Scratch::new()).unwrap(),
            "conv2d_input_grad",
        )?;
        assert_bits_equal(
            &scalar.conv2d_input_grad_prepacked(&packed, &grad, dims, spec, &mut Scratch::new()).unwrap(),
            &simd.conv2d_input_grad_prepacked(&packed, &grad, dims, spec, &mut Scratch::new()).unwrap(),
            "conv2d_input_grad_prepacked",
        )?;
    }

    /// Depthwise forward/backward/input-grad are bit-identical across
    /// tiers and the forward matches the naive gather loop within 1e-5.
    #[test]
    fn depthwise_family_cross_dispatch(
        seed in 0u64..1_000_000,
        n in 1usize..3,
        c in 1usize..5,
        k in 1usize..4,
        stride in 1usize..3,
        pad in 0usize..2,
        hw in 4usize..9,
    ) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let (scalar, simd) = tiers();
        let spec = ConvSpec { stride, padding: pad };
        if spec.output_extent(hw, k).is_err() {
            return Ok(());
        }
        let input = rand_tensor(&mut rng, &[n, c, hw, hw]);
        let weight = rand_tensor(&mut rng, &[c, k, k]);
        let bias = rand_tensor(&mut rng, &[c]);

        let fwd_s = scalar.depthwise_conv2d(&input, &weight, Some(&bias), spec).unwrap();
        let fwd_v = simd.depthwise_conv2d(&input, &weight, Some(&bias), spec).unwrap();
        assert_bits_equal(&fwd_s, &fwd_v, "depthwise_conv2d")?;
        let naive = reference::depthwise_conv2d_naive(&input, &weight, Some(&bias), spec).unwrap();
        for (x, y) in fwd_v.data().iter().zip(naive.data().iter()) {
            prop_assert!((x - y).abs() < 1e-5 * (1.0 + y.abs()), "{} vs naive {}", x, y);
        }

        let grad = rand_tensor(&mut rng, fwd_s.dims());
        let back_s = scalar.depthwise_conv2d_backward(&input, &weight, &grad, spec).unwrap();
        let back_v = simd.depthwise_conv2d_backward(&input, &weight, &grad, spec).unwrap();
        assert_bits_equal(&back_s.d_input, &back_v.d_input, "depthwise_backward.d_input")?;
        assert_bits_equal(&back_s.d_weight, &back_v.d_weight, "depthwise_backward.d_weight")?;
        assert_bits_equal(&back_s.d_bias, &back_v.d_bias, "depthwise_backward.d_bias")?;

        assert_bits_equal(
            &scalar.depthwise_input_grad(&weight, &grad, input.dims(), spec).unwrap(),
            &simd.depthwise_input_grad(&weight, &grad, input.dims(), spec).unwrap(),
            "depthwise_input_grad",
        )?;
    }

    /// Max-pool forward (values **and** argmax table) and backward are
    /// identical across tiers.
    #[test]
    fn max_pool_cross_dispatch(
        seed in 0u64..1_000_000,
        n in 1usize..3,
        c in 1usize..4,
        window in 1usize..4,
        stride in 1usize..4,
        hw in 4usize..10,
    ) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let (scalar, simd) = tiers();
        if window > hw {
            return Ok(());
        }
        let spec = PoolSpec::new(window, stride).unwrap();
        let input = rand_tensor(&mut rng, &[n, c, hw, hw]);

        let pool_s = scalar.max_pool2d(&input, spec).unwrap();
        let pool_v = simd.max_pool2d(&input, spec).unwrap();
        assert_bits_equal(&pool_s.output, &pool_v.output, "max_pool2d")?;
        prop_assert_eq!(&pool_s.argmax, &pool_v.argmax, "max_pool2d argmax");

        let grad = rand_tensor(&mut rng, pool_s.output.dims());
        assert_bits_equal(
            &scalar.max_pool2d_backward(&grad, &pool_s.argmax, input.dims()).unwrap(),
            &simd.max_pool2d_backward(&grad, &pool_v.argmax, input.dims()).unwrap(),
            "max_pool2d_backward",
        )?;
    }

    /// Blur — both the separable fast path (box kernel) and the generic
    /// 2-D fallback (non-separable kernel) — is bit-identical across
    /// tiers, for batches and single images.
    #[test]
    fn blur_cross_dispatch(
        seed in 0u64..1_000_000,
        n in 1usize..3,
        c in 1usize..4,
        hw in 4usize..10,
        k in 0usize..2,
    ) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let (scalar, simd) = tiers();
        let ksize = 2 * k + 3; // odd: 3 or 5
        if ksize > hw {
            return Ok(());
        }
        let batch = rand_tensor(&mut rng, &[n, c, hw, hw]);

        // Separable: normalized box kernel (rank-1, takes the two-pass path).
        let boxk = Tensor::full(&[ksize, ksize], 1.0 / (ksize * ksize) as f32);
        assert_bits_equal(
            &scalar.blur_batch(&batch, &boxk).unwrap(),
            &simd.blur_batch(&batch, &boxk).unwrap(),
            "blur_batch (separable)",
        )?;

        // Non-separable: random kernel falls back to depthwise 2-D.
        let randk = rand_tensor(&mut rng, &[ksize, ksize]);
        assert_bits_equal(
            &scalar.blur_batch(&batch, &randk).unwrap(),
            &simd.blur_batch(&batch, &randk).unwrap(),
            "blur_batch (2-D fallback)",
        )?;

        let image = rand_tensor(&mut rng, &[c, hw, hw]);
        assert_bits_equal(
            &scalar.blur_image(&image, &boxk).unwrap(),
            &simd.blur_image(&image, &boxk).unwrap(),
            "blur_image",
        )?;
    }
}

/// Caller-supplied `input_dims` whose volume overflows `usize` must come
/// back as a typed [`blurnet_tensor::TensorError::SizeOverflow`], not a
/// capacity panic inside the allocator.
#[test]
fn input_grad_rejects_overflowing_dims() {
    let backend = CpuBackend::new();
    let weight = Tensor::zeros(&[1, 1, 3, 3]);
    let grad = Tensor::zeros(&[1, 1, 4, 4]);
    let spec = ConvSpec::same(3).unwrap();
    let huge = [usize::MAX, 1, usize::MAX, 4];
    let err = backend
        .conv2d_input_grad(&weight, &grad, &huge, spec, &mut Scratch::new())
        .unwrap_err();
    assert!(
        matches!(err, blurnet_tensor::TensorError::SizeOverflow { .. }),
        "expected SizeOverflow, got {err:?}"
    );
}

/// Metadata entry points agree with the construction-time dispatch.
#[test]
fn backend_metadata_reports_tier() {
    let (scalar, simd) = tiers();
    assert_eq!(scalar.simd_tier(), SimdTier::Scalar);
    assert_eq!(simd.simd_tier(), SimdTier::detect());
    assert_eq!(scalar.name(), "cpu");
    assert!(SimdTier::Scalar.is_supported());
}
