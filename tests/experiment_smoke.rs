//! Smoke tests that every table/figure reproduction runs end-to-end and
//! produces structurally valid output. These are the same entry points the
//! bench binaries call.

use blurnet::experiments::{figures, table1, table3, table4, table5};
use blurnet::{ModelZoo, Scale};
use blurnet_defenses::DefenseKind;

/// One shared zoo keeps the total training cost of this file low: models
/// are trained once and reused across the experiments, exactly as
/// `all_experiments` does.
fn smoke_zoo() -> ModelZoo {
    ModelZoo::new(Scale::Smoke, 7).expect("smoke dataset generation")
}

#[test]
fn table1_reproduction_runs_and_renders() {
    let mut zoo = smoke_zoo();
    let t1 = table1::run(&mut zoo).unwrap();
    assert_eq!(t1.rows.len(), 5);
    let rendered = t1.table().to_string();
    assert!(rendered.contains("Input filter 3x3"));
    assert!(rendered.contains("Accuracy"));
}

#[test]
fn table3_and_table4_share_trained_models() {
    let mut zoo = smoke_zoo();
    let defense = DefenseKind::TotalVariation { alpha: 1e-4 };
    let adaptive = table3::run_defense(&mut zoo, &defense).unwrap();
    let cached_after_t3 = zoo.cached_models();
    let pgd = table4::run_defense(&mut zoo, &defense).unwrap();
    // The same trained model is reused, not retrained.
    assert_eq!(zoo.cached_models(), cached_after_t3);
    assert!((0.0..=1.0).contains(&adaptive.average_success_rate));
    assert!((0.0..=1.0).contains(&pgd.attack_success_rate));
}

#[test]
fn table5_reports_all_three_adaptive_attacks() {
    let mut zoo = smoke_zoo();
    let t5 = table5::run(&mut zoo).unwrap();
    assert_eq!(t5.rows.len(), 3);
    let labels: Vec<&str> = t5.rows.iter().map(|r| r.attack.as_str()).collect();
    assert!(labels.contains(&"TV adaptive attack"));
    assert!(labels.contains(&"Tik_hf attack"));
    assert!(labels.contains(&"Tik_pseudo attack"));
}

#[test]
fn figure2_blur_reduces_difference_spectrum() {
    let mut zoo = smoke_zoo();
    let fig2 = figures::figure2(&mut zoo, 4).unwrap();
    assert!(!fig2.channels.is_empty());
    // The paper's qualitative claim: blurring the difference map removes
    // high-frequency energy (or at least never adds any).
    assert!(
        fig2.mean_blurred_difference_fraction() <= fig2.mean_difference_fraction() + 1e-3,
        "blur should not increase the high-frequency share ({} -> {})",
        fig2.mean_difference_fraction(),
        fig2.mean_blurred_difference_fraction()
    );
}

#[test]
fn figure3_sweep_returns_one_point_per_dimension() {
    let mut zoo = smoke_zoo();
    let fig3 = figures::figure3(&mut zoo, &[8, 16]).unwrap();
    assert_eq!(fig3.points.len(), 2);
    for (dim, asr) in &fig3.points {
        assert!(*dim == 8 || *dim == 16);
        assert!((0.0..=1.0).contains(asr));
    }
    assert!(fig3.table().to_string().contains("DCT mask dim"));
}
