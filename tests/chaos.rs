//! Chaos suite for the core fault sites (`core.*`): every registered
//! queue/scheduler fault point is exercised one at a time, and the
//! survival invariants are asserted each time:
//!
//! * queue-level faults (spurious refusals, lost wakeups, spurious
//!   timeouts) never change the scheduler's report — resilient callers
//!   retry, so `results.json` stays **byte-identical** to a clean run;
//! * scheduler-node faults without `--retry-failed` degrade gracefully:
//!   the hit node is `Failed`, its dependents are `Skipped`, and every
//!   unaffected cell's report entry is byte-identical to the clean run;
//! * with `retry_failed(1)`, a once-firing fault is fully absorbed: the
//!   retried node succeeds and the whole report is byte-identical.
//!
//! The fault registry is process-global, so every test serializes around
//! one lock. Compile with `--features fault-injection`.

#![cfg(feature = "fault-injection")]

use std::sync::{Mutex, MutexGuard};
use std::time::Duration;

use blurnet::experiments::grid::{CellKind, CellSpec, ExperimentGrid};
use blurnet::experiments::table1::Table1Victim;
use blurnet::fault::{self, sites, FaultKind, FaultSpec, MARKER};
use blurnet::queue::{BoundedQueue, PopTimeout};
use blurnet::{CellStatus, ExperimentScheduler, Scale, ScheduledRun};

/// The registry is global; chaos tests serialize around this lock.
static LOCK: Mutex<()> = Mutex::new(());

fn serialized() -> MutexGuard<'static, ()> {
    // A previous test's assertion failure must not cascade into lock
    // poisoning noise.
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// The deterministic report as bytes — the byte-identity currency.
fn report_bytes(run: &ScheduledRun) -> Vec<u8> {
    serde_json::to_string(&run.report)
        .expect("report serializes")
        .into_bytes()
}

fn scheduler() -> ExperimentScheduler {
    ExperimentScheduler::new(Scale::Smoke, 7).threads(2)
}

#[test]
fn queue_faults_leave_the_scheduler_report_byte_identical() {
    let _guard = serialized();
    fault::disarm_all();
    let grid = ExperimentGrid::micro();
    let clean = scheduler().run(&grid).expect("clean run");
    assert!(clean.report.all_ok());

    for site in [sites::QUEUE_PUSH, sites::QUEUE_POP] {
        fault::disarm_all();
        fault::arm(site, FaultSpec::seeded(FaultKind::Error, 0xB10B, 0.25));
        let chaotic = scheduler().run(&grid).expect("chaotic run completes");
        assert!(
            fault::hits(site) > 0,
            "{site}: the scenario never reached its fault point"
        );
        assert!(
            fault::fires(site) > 0,
            "{site}: the fault never actually fired"
        );
        assert_eq!(
            report_bytes(&chaotic),
            report_bytes(&clean),
            "{site}: queue-level faults must be invisible in the report"
        );
    }
    fault::disarm_all();
}

#[test]
fn spurious_pop_timeouts_do_not_lose_queued_items() {
    let _guard = serialized();
    fault::disarm_all();
    // `core.queue.pop_timeout` models a spurious timeout: the resilient
    // consumer pattern (retry until `Closed`) still drains everything.
    fault::arm(
        sites::QUEUE_POP_TIMEOUT,
        FaultSpec::on_hit(FaultKind::Error, 1),
    );
    let queue = BoundedQueue::new(4);
    queue.push(42u32).expect("open queue accepts");
    assert_eq!(
        queue.pop_timeout(Duration::from_millis(50)),
        PopTimeout::TimedOut,
        "the armed fault reports a spurious timeout despite a queued item"
    );
    assert_eq!(
        queue.pop_timeout(Duration::from_millis(50)),
        PopTimeout::Item(42),
        "a retrying consumer recovers the item"
    );
    assert_eq!(fault::fires(sites::QUEUE_POP_TIMEOUT), 1);
    fault::disarm_all();
}

#[test]
fn a_failed_train_node_skips_only_its_dependents() {
    let _guard = serialized();
    fault::disarm_all();
    let grid = ExperimentGrid::micro();
    // Single worker: node order is deterministic, so the first train node
    // (grid order) takes the injected failure.
    let clean = ExperimentScheduler::new(Scale::Smoke, 7)
        .threads(1)
        .run(&grid)
        .expect("clean run");

    fault::arm(sites::SCHED_TRAIN, FaultSpec::on_hit(FaultKind::Error, 1));
    let faulty = ExperimentScheduler::new(Scale::Smoke, 7)
        .threads(1)
        .run(&grid)
        .expect("faulty run still reports");
    fault::disarm_all();

    assert!(!faulty.report.all_ok());
    let mut skipped = 0;
    for (cell, clean_cell) in faulty.report.cells.iter().zip(&clean.report.cells) {
        match &cell.status {
            CellStatus::Skipped { reason } => {
                assert!(
                    reason.contains(MARKER),
                    "skip reason should carry the injected cause, got: {reason}"
                );
                skipped += 1;
            }
            CellStatus::Ok => {
                assert_eq!(cell, clean_cell, "unaffected cell diverged from clean run");
            }
            other => panic!("unexpected cell status {other:?}"),
        }
    }
    // Exactly the failed variant's cells are skipped (micro grid: two
    // cells per variant), everything else survived.
    assert_eq!(skipped, 2);
}

#[test]
fn retry_failed_absorbs_a_transient_train_fault_byte_identically() {
    let _guard = serialized();
    fault::disarm_all();
    let grid = ExperimentGrid::micro();
    let clean = ExperimentScheduler::new(Scale::Smoke, 7)
        .threads(1)
        .run(&grid)
        .expect("clean run");

    fault::arm(sites::SCHED_TRAIN, FaultSpec::on_hit(FaultKind::Error, 1));
    let retried = ExperimentScheduler::new(Scale::Smoke, 7)
        .threads(1)
        .retry_failed(1)
        .run(&grid)
        .expect("retried run");
    assert_eq!(fault::fires(sites::SCHED_TRAIN), 1);
    fault::disarm_all();

    assert!(retried.report.all_ok());
    assert_eq!(
        report_bytes(&retried),
        report_bytes(&clean),
        "a successfully retried node must leave no trace in the report"
    );
}

#[test]
fn retry_failed_absorbs_an_injected_cell_panic() {
    let _guard = serialized();
    fault::disarm_all();
    let grid = ExperimentGrid::micro();
    let clean = ExperimentScheduler::new(Scale::Smoke, 7)
        .threads(1)
        .run(&grid)
        .expect("clean run");

    // Panic kind: the cell's catch_unwind isolation feeds the retry path.
    fault::arm(sites::SCHED_CELL, FaultSpec::on_hit(FaultKind::Panic, 1));
    let retried = ExperimentScheduler::new(Scale::Smoke, 7)
        .threads(1)
        .retry_failed(1)
        .run(&grid)
        .expect("retried run");
    assert_eq!(fault::fires(sites::SCHED_CELL), 1);
    fault::disarm_all();

    assert!(retried.report.all_ok());
    assert_eq!(report_bytes(&retried), report_bytes(&clean));
}

#[test]
fn an_unretried_cell_fault_fails_only_that_cell() {
    let _guard = serialized();
    fault::disarm_all();
    let grid = ExperimentGrid::micro();
    let clean = ExperimentScheduler::new(Scale::Smoke, 7)
        .threads(1)
        .run(&grid)
        .expect("clean run");

    fault::arm(sites::SCHED_CELL, FaultSpec::on_hit(FaultKind::Error, 1));
    let faulty = ExperimentScheduler::new(Scale::Smoke, 7)
        .threads(1)
        .run(&grid)
        .expect("faulty run still reports");
    fault::disarm_all();

    let failed: Vec<usize> = faulty
        .report
        .cells
        .iter()
        .enumerate()
        .filter(|(_, c)| matches!(c.status, CellStatus::Failed { .. }))
        .map(|(i, _)| i)
        .collect();
    assert_eq!(failed.len(), 1, "exactly one cell takes the fault");
    match &faulty.report.cells[failed[0]].status {
        CellStatus::Failed { error } => assert!(error.contains(MARKER)),
        _ => unreachable!(),
    }
    for (i, (cell, clean_cell)) in faulty
        .report
        .cells
        .iter()
        .zip(&clean.report.cells)
        .enumerate()
    {
        if i != failed[0] {
            assert_eq!(cell, clean_cell, "sibling cell {i} diverged");
        }
    }
}

#[test]
fn retry_failed_regenerates_a_faulted_artifact() {
    let _guard = serialized();
    fault::disarm_all();
    // A grid with one Table I cell forces the shared transfer-set
    // artifact node into the DAG.
    let grid = ExperimentGrid::custom(vec![CellSpec {
        experiment: "table1",
        label: Table1Victim::Baseline.label(),
        kind: CellKind::Table1(Table1Victim::Baseline),
    }]);
    let clean = ExperimentScheduler::new(Scale::Smoke, 7)
        .threads(1)
        .run(&grid)
        .expect("clean run");
    assert!(clean.report.all_ok());

    // Without retries the artifact failure cascades into a skip...
    fault::arm(
        sites::SCHED_ARTIFACT,
        FaultSpec::on_hit(FaultKind::Error, 1),
    );
    let faulty = ExperimentScheduler::new(Scale::Smoke, 7)
        .threads(1)
        .run(&grid)
        .expect("faulty run still reports");
    match &faulty.report.cells[0].status {
        CellStatus::Skipped { reason } => assert!(reason.contains(MARKER)),
        other => panic!("expected the cell to be skipped, got {other:?}"),
    }

    // ...with one retry the artifact regenerates deterministically.
    fault::disarm_all();
    fault::arm(
        sites::SCHED_ARTIFACT,
        FaultSpec::on_hit(FaultKind::Error, 1),
    );
    let retried = ExperimentScheduler::new(Scale::Smoke, 7)
        .threads(1)
        .retry_failed(1)
        .run(&grid)
        .expect("retried run");
    assert_eq!(fault::fires(sites::SCHED_ARTIFACT), 1);
    fault::disarm_all();

    assert!(retried.report.all_ok());
    assert_eq!(report_bytes(&retried), report_bytes(&clean));
}

/// A per-test scratch directory under the system temp dir, removed on
/// drop so chaos runs never leak warm caches into each other.
struct TempDir(std::path::PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!("blurnet-chaos-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create chaos temp dir");
        TempDir(dir)
    }

    fn path(&self) -> &std::path::Path {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

#[test]
fn a_poisoned_cache_probe_falls_back_to_retraining() {
    let _guard = serialized();
    fault::disarm_all();
    let grid = ExperimentGrid::micro();
    let clean = scheduler().run(&grid).expect("clean run");
    assert!(clean.report.all_ok());

    // Warm the disk cache with a clean cached run first, so the poisoned
    // run below actually has entries to refuse.
    let cache = TempDir::new("cache-load");
    let warm = scheduler()
        .cache_dir(cache.path())
        .run(&grid)
        .expect("warm cached run");
    assert_eq!(
        report_bytes(&warm),
        report_bytes(&clean),
        "writing the cache must not change the report"
    );

    // `core.cache.load`: every probe reports corruption, so the scheduler
    // must take the regenerate-from-scratch path for every entry — and
    // still produce the byte-identical report, because a cache is only an
    // accelerator, never a source of truth.
    fault::arm(sites::CACHE_LOAD, FaultSpec::always(FaultKind::Error));
    let poisoned = scheduler()
        .cache_dir(cache.path())
        .run(&grid)
        .expect("poisoned-cache run completes");
    assert!(
        fault::fires(sites::CACHE_LOAD) > 0,
        "the cached run never probed the disk cache"
    );
    fault::disarm_all();

    assert!(poisoned.report.all_ok(), "no cell may fail on a bad cache");
    assert_eq!(
        report_bytes(&poisoned),
        report_bytes(&clean),
        "a poisoned cache must downgrade to retraining, not change results"
    );
}

#[test]
fn on_disk_cache_corruption_downgrades_to_regeneration() {
    let _guard = serialized();
    fault::disarm_all();
    let grid = ExperimentGrid::micro();
    let clean = scheduler().run(&grid).expect("clean run");

    let cache = TempDir::new("cache-rot");
    scheduler()
        .cache_dir(cache.path())
        .run(&grid)
        .expect("warm cached run");

    // Flip one payload byte in every cached file — checksum validation
    // must catch each one and the scheduler must regenerate instead of
    // serving rot (or panicking).
    let mut corrupted = 0;
    for entry in std::fs::read_dir(cache.path()).expect("read cache dir") {
        let path = entry.expect("dir entry").path();
        let mut bytes = std::fs::read(&path).expect("read cache file");
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&path, &bytes).expect("write corrupted file");
        corrupted += 1;
    }
    assert!(corrupted > 0, "the warm run cached nothing");

    let recovered = scheduler()
        .cache_dir(cache.path())
        .run(&grid)
        .expect("run over a rotten cache completes");
    assert!(recovered.report.all_ok());
    assert_eq!(
        report_bytes(&recovered),
        report_bytes(&clean),
        "corrupt cache entries must be regenerated, not trusted"
    );
}

#[test]
fn a_failed_journal_append_retires_the_journal_but_not_the_run() {
    let _guard = serialized();
    fault::disarm_all();
    let grid = ExperimentGrid::micro();
    let clean = scheduler().run(&grid).expect("clean run");
    assert!(clean.report.all_ok());

    // `core.journal.append`: the write-ahead journal is a recovery
    // accelerator, never a gate — an append failure must retire the
    // journal (delete it, so a later resume can't trust a lying one) and
    // leave the run itself byte-identical.
    let dir = TempDir::new("journal-retire");
    let journal = dir.path().join("run.journal");
    fault::arm(
        sites::JOURNAL_APPEND,
        FaultSpec::on_hit(FaultKind::Error, 2),
    );
    let journaled = scheduler()
        .journal_path(&journal)
        .run(&grid)
        .expect("run survives the retired journal");
    assert_eq!(fault::fires(sites::JOURNAL_APPEND), 1);
    fault::disarm_all();

    assert!(journaled.report.all_ok(), "no cell may fail on journal IO");
    assert_eq!(
        report_bytes(&journaled),
        report_bytes(&clean),
        "a retired journal must not change results"
    );
    assert!(
        !journal.exists(),
        "a journal that missed an append must be deleted, not left lying"
    );
}

#[test]
fn every_core_fault_site_has_a_chaos_scenario() {
    // The sites this suite exercises; `crates/serve/tests/chaos.rs` owns
    // the `serve.*` half of the registry, and the process-level
    // kill-anywhere coverage for the journal sites (abort + torn-append
    // kinds) lives in `crates/bench/tests/crash_chaos.rs`.
    let covered = [
        sites::QUEUE_PUSH,
        sites::QUEUE_POP,
        sites::QUEUE_POP_TIMEOUT,
        sites::SCHED_TRAIN,
        sites::SCHED_ARTIFACT,
        sites::SCHED_CELL,
        sites::CACHE_LOAD,
        sites::JOURNAL_APPEND,
        sites::JOURNAL_TORN,
    ];
    for site in fault::all_sites() {
        if site.starts_with("core.") {
            assert!(
                covered.contains(site),
                "core fault site {site} has no chaos scenario"
            );
        }
    }
}
