//! Property tests on the write-ahead run journal's reader: the crash
//! model says a process can die at ANY byte boundary (torn tail) and a
//! disk can hand back corrupted bytes (bit rot). The reader must never
//! panic, must keep the longest valid prefix under truncation, and must
//! reject — not misparse — corrupted records.

use blurnet::experiments::table2::Table2Row;
use blurnet::journal::{
    recover_journal, JournalError, JournalHeader, JOURNAL_MAGIC, JOURNAL_VERSION, KIND_CELL,
    KIND_HEADER,
};
use blurnet::report::{CellOutput, CellReport, CellStatus};
use blurnet::BlurNetError;
use blurnet_tensor::persist::frame_record;
use proptest::prelude::*;

/// Builds a syntactically valid journal byte stream: one header plus
/// `cells` completed-cell records with distinguishable payloads.
fn journal_bytes(cells: usize) -> Vec<u8> {
    let header = JournalHeader {
        schema: "blurnet-results/v1".to_string(),
        scale: "smoke".to_string(),
        seed: 7,
        cells,
    };
    let mut bytes = frame_record(
        JOURNAL_MAGIC,
        JOURNAL_VERSION,
        KIND_HEADER,
        serde_json::to_string(&header).unwrap().as_bytes(),
    );
    for i in 0..cells {
        let cell = CellReport {
            experiment: "table2".to_string(),
            label: format!("cell-{i}"),
            status: CellStatus::Ok,
            output: Some(CellOutput::Table2(Table2Row {
                defense: format!("defense-{i}"),
                legitimate_accuracy: 0.5 + i as f32 * 0.01,
                average_success_rate: 0.25,
                worst_success_rate: 0.5,
                l2_dissimilarity: 0.1,
            })),
        };
        bytes.extend_from_slice(&frame_record(
            JOURNAL_MAGIC,
            JOURNAL_VERSION,
            KIND_CELL,
            serde_json::to_string(&cell).unwrap().as_bytes(),
        ));
    }
    bytes
}

/// Unwraps the reader's error down to the journal-typed layer.
fn journal_err(e: BlurNetError) -> JournalError {
    match e {
        BlurNetError::Journal(e) => e,
        other => panic!("expected a journal error, got: {other}"),
    }
}

/// Byte offsets where each record of `journal_bytes(cells)` ends, header
/// first. A truncation at or past `ends[k]` preserves at least `k` cell
/// records (index 0 is the header).
fn record_ends(cells: usize) -> Vec<usize> {
    let mut ends = Vec::with_capacity(cells + 1);
    let mut total = journal_bytes(0).len();
    ends.push(total);
    for i in 1..=cells {
        total = journal_bytes(i).len();
        ends.push(total);
    }
    ends
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Truncation anywhere — the crash model for a torn final append —
    /// keeps exactly the record-complete prefix and reports the tail as
    /// dropped bytes. Never a panic, never a phantom cell.
    #[test]
    fn truncation_anywhere_keeps_the_valid_prefix(cells in 0usize..5, cut_frac in 0.0f64..1.0) {
        let bytes = journal_bytes(cells);
        let cut = ((bytes.len() as f64) * cut_frac) as usize;
        let ends = record_ends(cells);

        match recover_journal(&bytes[..cut]) {
            Ok(recovered) => {
                // A successful read means the header survived intact…
                prop_assert!(cut >= ends[0], "header cannot parse from {cut} bytes");
                // …and the cell count is exactly the number of complete
                // cell records before the cut.
                let complete = ends.iter().skip(1).filter(|&&end| end <= cut).count();
                prop_assert_eq!(recovered.cells.len(), complete);
                prop_assert_eq!(recovered.dropped_bytes, cut - ends[complete]);
                for (i, cell) in recovered.cells.iter().enumerate() {
                    prop_assert_eq!(&cell.label, &format!("cell-{i}"));
                }
            }
            Err(e) => {
                // Only a truncated HEADER may fail the whole read.
                prop_assert!(cut < ends[0], "read failed with a full header: {e}");
                let e = journal_err(e);
                prop_assert!(matches!(e, JournalError::NoHeader(_)), "got: {e}");
            }
        }
    }

    /// Flipping any single byte never panics the reader, and a flip
    /// inside a record body never silently yields a DIFFERENT cell list
    /// than honest truncation at that record's start would.
    #[test]
    fn any_single_byte_flip_is_rejected_not_misparsed(cells in 1usize..4, pos_frac in 0.0f64..1.0, flip in 1u8..=255) {
        let mut bytes = journal_bytes(cells);
        let pos = (((bytes.len() - 1) as f64) * pos_frac) as usize;
        bytes[pos] ^= flip;
        let ends = record_ends(cells);
        // Index of the record the flipped byte lives in (0 = header).
        let victim = ends.iter().filter(|&&end| end <= pos).count();

        match recover_journal(&bytes) {
            Ok(recovered) => {
                // The checksum can only vouch for records before the
                // flip; everything from the victim on must be gone.
                // (The flip corrupts its own record; later records are
                // unreachable because record boundaries derive from the
                // corrupted length field or fail the resync.)
                prop_assert!(victim >= 1, "a corrupted header cannot read Ok");
                prop_assert!(
                    recovered.cells.len() < victim,
                    "cell {} carries a flipped byte but {} cells survived",
                    victim - 1,
                    recovered.cells.len()
                );
                for (i, cell) in recovered.cells.iter().enumerate() {
                    prop_assert_eq!(&cell.label, &format!("cell-{i}"));
                }
            }
            Err(e) => {
                // Typed rejection is always acceptable: a header flip is
                // NoHeader, a checksum-passing kind/JSON mutation is
                // BadRecord. Panics and misparses are the only failures.
                let e = journal_err(e);
                prop_assert!(
                    matches!(e, JournalError::NoHeader(_) | JournalError::BadRecord { .. }),
                    "got: {e}"
                );
            }
        }
    }

    /// Appending arbitrary garbage after a valid journal — a crash while
    /// the allocator had handed the file preallocated blocks — keeps all
    /// real records and drops the garbage tail.
    #[test]
    fn arbitrary_garbage_tails_are_dropped(cells in 0usize..4, tail in proptest::collection::vec(0u8..=255, 48), tail_len in 1usize..=48) {
        let mut bytes = journal_bytes(cells);
        bytes.extend_from_slice(&tail[..tail_len]);
        match recover_journal(&bytes) {
            Ok(recovered) => {
                prop_assert_eq!(recovered.cells.len(), cells);
                prop_assert!(recovered.dropped_bytes > 0);
            }
            // The garbage can accidentally frame a checksum-valid record
            // only by forging an FNV-1a collision; a typed BadRecord for
            // an unknown kind is the one tolerable escape hatch.
            Err(e) => {
                let e = journal_err(e);
                prop_assert!(matches!(e, JournalError::BadRecord { .. }), "got: {e}");
            }
        }
    }
}

/// Ordering violations are deterministic, so they get plain tests: each
/// malformed shape maps to its own typed error (pinned in unit tests in
/// `blurnet::journal`) and none of them panic through this public entry.
#[test]
fn ordering_violations_stay_typed_through_the_public_reader() {
    // A cell record with no header in front of it.
    let cell_first = journal_bytes(1)[record_ends(1)[0]..].to_vec();
    let err = journal_err(recover_journal(&cell_first).expect_err("headerless journal"));
    assert!(matches!(err, JournalError::CellBeforeHeader), "got: {err}");

    // Two headers back to back.
    let mut twice = journal_bytes(0);
    let second_offset = twice.len();
    twice.extend_from_slice(&journal_bytes(0));
    match journal_err(recover_journal(&twice).expect_err("double header")) {
        JournalError::DuplicateHeader { offset } => assert_eq!(offset, second_offset),
        other => panic!("expected DuplicateHeader, got {other:?}"),
    }
}
