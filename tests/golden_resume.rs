//! Golden resume tests: `--resume` must be **indistinguishable** from a
//! cold run.
//!
//! * Resuming a fully completed micro-grid run executes **zero** cells
//!   (the scheduler is never invoked) and re-emits the byte-identical
//!   `results.json`.
//! * Deleting one cell from the prior report reruns **exactly** that
//!   cell, and the merged report is still byte-identical to the cold
//!   run's.
//! * A cached (`--cache-dir`) delta run changes nothing either: the
//!   disk cache is an accelerator, not a source of truth.

use blurnet::experiments::grid::ExperimentGrid;
use blurnet::{plan_resume, resume_run, CellStatus, ExperimentScheduler, RunReport, Scale};

const SEED: u64 = 7;

fn scheduler() -> ExperimentScheduler {
    ExperimentScheduler::new(Scale::Smoke, SEED).threads(2)
}

/// A cold micro-grid run plus its serialized `results.json` bytes — and
/// the prior-report value a `--resume` run would parse back from disk
/// (the JSON round-trip IS the persistence path).
fn cold_run() -> (RunReport, String) {
    let report = scheduler()
        .run(&ExperimentGrid::micro())
        .expect("cold micro grid")
        .report;
    let json = report.to_json();
    let reparsed: RunReport = serde_json::from_str(&json).expect("results.json parses back");
    assert_eq!(reparsed, report, "results.json round-trip must be lossless");
    (reparsed, json)
}

#[test]
fn resuming_a_completed_run_executes_zero_cells() {
    let grid = ExperimentGrid::micro();
    let (prior, cold_json) = cold_run();

    let resumed = resume_run(&scheduler(), &grid, &prior).expect("resume succeeds");
    assert_eq!(resumed.executed, 0, "a completed run has no delta");
    assert_eq!(resumed.replayed, grid.len());
    assert!(
        resumed.profile.is_none(),
        "zero delta means the scheduler never ran at all"
    );
    assert_eq!(
        resumed.report.to_json(),
        cold_json,
        "the resumed results.json must be byte-identical to the cold run"
    );
}

#[test]
fn a_deleted_cell_is_the_only_one_that_reruns() {
    let grid = ExperimentGrid::micro();
    let (mut prior, cold_json) = cold_run();

    // Drop the second cell from the prior report, as if the first run
    // died before finishing it.
    let dropped = prior.cells.remove(1);

    let plan = plan_resume(&grid, &prior, &Scale::Smoke.to_string(), SEED).expect("plan");
    assert_eq!(plan.delta(), 1, "exactly the dropped cell is delta");
    assert_eq!(plan.replayed(), grid.len() - 1);

    let resumed = resume_run(&scheduler(), &grid, &prior).expect("resume succeeds");
    assert_eq!(resumed.executed, 1);
    assert_eq!(resumed.replayed, grid.len() - 1);
    let rerun = &resumed.report.cells[1];
    assert_eq!(rerun.experiment, dropped.experiment);
    assert_eq!(rerun.label, dropped.label);
    assert_eq!(
        resumed.report.to_json(),
        cold_json,
        "rerunning the missing cell must reproduce the cold bytes exactly"
    );
}

#[test]
fn failed_prior_cells_are_rescheduled_not_replayed() {
    let grid = ExperimentGrid::micro();
    let (mut prior, cold_json) = cold_run();

    // A cell that failed last time must not replay its failure.
    prior.cells[0].status = CellStatus::Failed {
        error: "previous run died here".into(),
    };
    prior.cells[0].output = None;

    let resumed = resume_run(&scheduler(), &grid, &prior).expect("resume succeeds");
    assert_eq!(resumed.executed, 1, "the failed cell reruns");
    assert_eq!(resumed.report.cells[0].status, CellStatus::Ok);
    assert_eq!(resumed.report.to_json(), cold_json);
}

#[test]
fn a_cached_delta_run_is_still_byte_identical() {
    let grid = ExperimentGrid::micro();
    let (mut prior, cold_json) = cold_run();
    prior.cells.pop();

    let cache = std::env::temp_dir().join(format!("blurnet-resume-cache-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&cache);
    let resumed = resume_run(&scheduler().cache_dir(&*cache), &grid, &prior).expect("resume");
    assert_eq!(resumed.executed, 1);
    assert_eq!(resumed.report.to_json(), cold_json);

    // Resume again over the now-warm cache: the delta cell loads its
    // model from disk instead of training — same bytes out.
    let mut prior2: RunReport = serde_json::from_str(&cold_json).expect("parses");
    prior2.cells.pop();
    let warm = resume_run(&scheduler().cache_dir(&*cache), &grid, &prior2).expect("warm resume");
    assert_eq!(warm.report.to_json(), cold_json);
    let _ = std::fs::remove_dir_all(&cache);
}
