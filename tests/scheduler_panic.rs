//! Regression tests for scheduler failure isolation: a panic (or error)
//! inside one cell must be captured into that cell's report entry without
//! poisoning sibling cells or the worker pool.

use blurnet::experiments::grid::ExperimentGrid;
use blurnet::{CellStatus, ExperimentScheduler, Scale};

#[test]
fn a_panicking_cell_does_not_poison_its_siblings() {
    let grid = ExperimentGrid::micro();
    let scheduler = ExperimentScheduler::new(Scale::Smoke, 7).threads(2);

    // Clean reference run.
    let clean = scheduler.run(&grid).expect("clean run schedules");
    assert!(clean.report.all_ok());

    // Same grid with a deliberate panic injected into the first cell.
    let faulty = scheduler
        .run_with_injected_panic(&grid, 0)
        .expect("faulty run still returns a report");

    // The poisoned cell is reported as failed, with the panic message.
    match &faulty.report.cells[0].status {
        CellStatus::Failed { error } => {
            assert!(
                error.contains("injected panic"),
                "failure should carry the panic message, got: {error}"
            );
        }
        other => panic!("expected the injected cell to fail, got {other:?}"),
    }
    assert!(faulty.report.cells[0].output.is_none());

    // Every sibling cell completed and produced *exactly* the clean run's
    // output — the panic neither crashed the run nor perturbed results.
    for (fault_cell, clean_cell) in faulty.report.cells[1..]
        .iter()
        .zip(clean.report.cells[1..].iter())
    {
        assert_eq!(fault_cell, clean_cell, "sibling cell diverged");
    }
    assert!(!faulty.report.all_ok());
}

#[test]
fn panic_isolation_holds_with_a_single_worker() {
    // The sequential (1-worker) scheduler path runs cells inline on the
    // caller thread; the catch_unwind isolation must hold there too.
    let grid = ExperimentGrid::micro();
    let faulty = ExperimentScheduler::new(Scale::Smoke, 7)
        .threads(1)
        .run_with_injected_panic(&grid, 3)
        .expect("faulty run still returns a report");
    for cell in &faulty.report.cells[..3] {
        assert_eq!(cell.status, CellStatus::Ok, "{}", cell.label);
    }
    assert!(matches!(
        faulty.report.cells[3].status,
        CellStatus::Failed { .. }
    ));
}
