//! Cross-crate integration tests: train → attack → defend → evaluate,
//! exercising the same paths the paper's experiments use, at smoke scale.

use blurnet::experiments::{table1, table2};
use blurnet::{ModelZoo, Scale};
use blurnet_attacks::{PgdAttack, PgdConfig, Rp2Attack, Rp2Config};
use blurnet_data::{DatasetConfig, SignDataset, STOP_CLASS_ID};
use blurnet_defenses::{train_defended_model, DefenseKind};
use blurnet_tensor::Tensor;
use blurnet_test_support::smoke_train_config;

#[test]
fn baseline_learns_above_chance_accuracy() {
    let dataset = SignDataset::generate(&DatasetConfig::smoke(), 7).unwrap();
    let model =
        train_defended_model(&DefenseKind::Baseline, &dataset, &smoke_train_config(4)).unwrap();
    let accuracy = model.training_report().test_accuracy;
    // 18 classes -> chance is ~5.6%. Even a few smoke epochs should beat it
    // by a wide margin on the synthetic dataset.
    assert!(
        accuracy > 0.3,
        "baseline accuracy {accuracy} should be well above chance"
    );
}

#[test]
fn rp2_succeeds_against_the_baseline_and_stays_on_the_sticker() {
    let dataset = SignDataset::generate(&DatasetConfig::smoke(), 7).unwrap();
    let mut model =
        train_defended_model(&DefenseKind::Baseline, &dataset, &smoke_train_config(4)).unwrap();
    let attack = Rp2Attack::new(Rp2Config {
        iterations: 60,
        ..Rp2Config::default()
    })
    .unwrap();
    let image = dataset.stop_eval_images()[0].clone();
    let clean_pred = model.classify_one(&image).unwrap();
    let result = attack.generate(model.network_mut(), &image, 12).unwrap();
    // The perturbation must be confined to the sticker mask and valid range.
    assert!(result.adversarial.min().unwrap() >= 0.0);
    assert!(result.adversarial.max().unwrap() <= 1.0);
    let changed_pixels = result
        .perturbation
        .data()
        .iter()
        .filter(|v| v.abs() > 1e-6)
        .count();
    assert!(changed_pixels > 0, "attack must actually perturb the sign");
    assert!(
        (changed_pixels as f32) < 0.25 * result.perturbation.len() as f32,
        "perturbation must stay localized"
    );
    // The attack should at least degrade the classifier's view of the sign:
    // either the prediction changes or the stop-sign confidence drops.
    let adv_pred = model.classify_one(&result.adversarial).unwrap();
    let loss_first = result.loss_trace.first().copied().unwrap();
    let loss_last = result.loss_trace.last().copied().unwrap();
    assert!(
        adv_pred != clean_pred || loss_last < loss_first,
        "attack had no effect at all (pred {clean_pred} -> {adv_pred}, loss {loss_first} -> {loss_last})"
    );
}

#[test]
fn feature_map_blur_reduces_transfer_attack_success() {
    // The core Table I claim at smoke scale: transferring baseline
    // adversarial examples to a 5x5 feature-map-filtered victim succeeds
    // no more often than against the baseline itself.
    let mut zoo = ModelZoo::new(Scale::Smoke, 7).unwrap();
    let result = table1::run(&mut zoo).unwrap();
    let baseline_asr = result.rows[0].attack_success_rate;
    let feature5_asr = result
        .rows
        .iter()
        .find(|r| r.defense == "5x5 filter on L1 maps")
        .unwrap()
        .attack_success_rate;
    assert!(
        feature5_asr <= baseline_asr,
        "feature-map filtering should not increase transfer success \
         (baseline {baseline_asr}, filtered {feature5_asr})"
    );
}

#[test]
fn white_box_row_has_consistent_statistics() {
    let mut zoo = ModelZoo::new(Scale::Smoke, 7).unwrap();
    let row = table2::run_defense(&mut zoo, &DefenseKind::TotalVariation { alpha: 1e-4 }).unwrap();
    assert!((0.0..=1.0).contains(&row.legitimate_accuracy));
    assert!((0.0..=1.0).contains(&row.average_success_rate));
    assert!(row.worst_success_rate >= row.average_success_rate - 1e-6);
    assert!(row.l2_dissimilarity >= 0.0 && row.l2_dissimilarity < 2.0);
}

#[test]
fn pgd_is_stronger_than_rp2_under_its_own_threat_model() {
    // Table IV's point: the unconstrained pixel adversary succeeds at least
    // as often as the sticker-constrained one against the same model.
    let dataset = SignDataset::generate(&DatasetConfig::smoke(), 9).unwrap();
    let mut model =
        train_defended_model(&DefenseKind::Baseline, &dataset, &smoke_train_config(4)).unwrap();
    let images: Vec<Tensor> = dataset.stop_eval_images()[..3].to_vec();
    let labels = vec![STOP_CLASS_ID; images.len()];

    let pgd = PgdAttack::new(PgdConfig {
        epsilon: 0.06,
        step_size: 0.02,
        steps: 8,
        random_start: false,
    })
    .unwrap();
    let pgd_eval = pgd.evaluate(model.network_mut(), &images, &labels).unwrap();

    let rp2 = Rp2Attack::new(Rp2Config {
        iterations: 20,
        ..Rp2Config::default()
    })
    .unwrap();
    let rp2_eval = rp2.evaluate(model.network_mut(), &images, 12).unwrap();
    assert!(
        pgd_eval.success_rate + 1e-6 >= rp2_eval.success_rate,
        "PGD ({}) should be at least as successful as RP2 ({}) on the undefended model",
        pgd_eval.success_rate,
        rp2_eval.success_rate
    );
}

#[test]
fn trained_models_serialize_and_keep_their_predictions() {
    let dataset = SignDataset::generate(&DatasetConfig::tiny(), 11).unwrap();
    let mut model =
        train_defended_model(&DefenseKind::Baseline, &dataset, &smoke_train_config(1)).unwrap();
    let image = dataset.stop_eval_images()[0].clone();
    let before = model.classify_one(&image).unwrap();
    let bytes = model.network().to_bytes().unwrap();
    let mut restored = blurnet_nn::Sequential::from_bytes(&bytes).unwrap();
    let after = restored.predict(&Tensor::stack(&[image]).unwrap()).unwrap()[0];
    assert_eq!(before, after);
}
