//! Golden persistence test over the **full experiment grid's** model
//! roster: every defense variant the full grid trains must survive
//! save → load → infer **bit-identically** — the restored model's test
//! accuracy equals the original's with exact `f32` equality — and the
//! accuracies themselves are pinned to a checked-in golden file, so a
//! format change that silently perturbs restored weights cannot hide.
//!
//! Regenerate after an *intentional* numeric or format change with:
//!
//! ```bash
//! BLURNET_BLESS=1 cargo test --test golden_variants
//! ```

use std::path::PathBuf;

use blurnet::experiments::grid::ExperimentGrid;
use blurnet::{ModelZoo, Scale};
use blurnet_defenses::{model_from_bytes, model_to_bytes};
use serde::{Deserialize, Serialize};

const SEED: u64 = 7;

/// One pinned variant: its label and exact test accuracy.
#[derive(Debug, PartialEq, Serialize, Deserialize)]
struct VariantPin {
    label: String,
    accuracy: f32,
}

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
        .join("variant_persistence.json")
}

#[test]
fn every_full_grid_variant_roundtrips_bit_identically() {
    let scale = Scale::Smoke;
    let grid = ExperimentGrid::full(scale);

    // The full grid's model roster, deduped in grid order.
    let mut roster = Vec::new();
    for spec in grid.cells() {
        let defense = spec.required_defense(scale);
        if !roster.iter().any(|d: &_| d == &defense) {
            roster.push(defense);
        }
    }
    assert!(roster.len() >= 10, "the full grid trains many variants");

    let mut zoo = ModelZoo::new(scale, SEED).expect("zoo builds");
    let batch = zoo.dataset().test_batch().expect("test batch");
    let mut pins = Vec::with_capacity(roster.len());
    for defense in &roster {
        let mut original = zoo.get_or_train(defense).expect("variant trains");
        let bytes = model_to_bytes(&original).expect("variant serializes");
        let mut restored = model_from_bytes(&bytes).expect("variant deserializes");
        assert_eq!(restored.defense(), original.defense());

        // Re-serialization is canonical: identical bytes straight back
        // out (before any inference advances the smoothing RNG).
        assert_eq!(
            model_to_bytes(&restored).expect("re-serializes"),
            bytes,
            "{}: serialization is not canonical",
            defense.label()
        );

        // Exact equality, not a tolerance: the restored network (and, for
        // randomized smoothing, its restored RNG position) must classify
        // the whole test set identically to the in-memory original.
        let a = original.accuracy(&batch).expect("original accuracy");
        let b = restored.accuracy(&batch).expect("restored accuracy");
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "{}: save→load→infer diverged ({a} vs {b})",
            defense.label()
        );
        pins.push(VariantPin {
            label: defense.label(),
            accuracy: a,
        });
    }

    let path = golden_path();
    if std::env::var_os("BLURNET_BLESS").is_some() {
        std::fs::create_dir_all(path.parent().expect("golden dir has a parent"))
            .expect("create golden dir");
        let json = serde_json::to_string(&pins).expect("pins serialize");
        std::fs::write(&path, json).expect("write golden file");
        eprintln!("blessed {}", path.display());
        return;
    }

    let golden_json = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); run BLURNET_BLESS=1 cargo test --test golden_variants",
            path.display()
        )
    });
    let golden: Vec<VariantPin> = serde_json::from_str(&golden_json).expect("golden parses");
    assert_eq!(
        pins, golden,
        "full-grid variant accuracies drifted from the golden persistence values"
    );
}
