//! Golden paper-reproduction tests: the seeded micro-grid (2 defenses ×
//! 2 attacks) must produce **bit-identical** `results.json` through the
//! concurrent scheduler (at 1 and 4 workers) and the old sequential
//! `BatchRunner` path, and its accuracy/attack-success numbers must match
//! the checked-in golden values with exact `f32` comparison.
//!
//! Regenerate the golden file after an *intentional* numeric change with:
//!
//! ```bash
//! BLURNET_BLESS=1 cargo test --test golden_repro
//! ```
//!
//! The goldens are tied to the compute kernels' dispatch (AVX2/FMA on the
//! CI container class); a legitimate kernel change that alters float
//! accumulation order is exactly what this suite is meant to surface.

use std::path::PathBuf;

use blurnet::experiments::grid::ExperimentGrid;
use blurnet::{CellOutput, CellStatus, ExperimentScheduler, ModelZoo, RunReport, Scale};

/// The micro-grid's seed (the shared experiment seed of the bench
/// binaries).
const SEED: u64 = 7;

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
        .join("micro_grid.json")
}

fn scheduler_report(workers: usize) -> RunReport {
    ExperimentScheduler::new(Scale::Smoke, SEED)
        .threads(workers)
        .run(&ExperimentGrid::micro())
        .expect("micro grid schedules")
        .report
}

fn sequential_report() -> RunReport {
    let mut zoo = ModelZoo::new(Scale::Smoke, SEED).expect("smoke zoo");
    ExperimentGrid::micro()
        .run_sequential(&mut zoo)
        .expect("sequential micro grid")
}

/// Pulls `(accuracy-or-NaN, success rate, l2)` out of a cell for the
/// spot-pinning assertions.
fn cell_numbers(report: &RunReport, experiment: &str, label: &str) -> (f32, f32) {
    let cell = report
        .cell(experiment, label)
        .unwrap_or_else(|| panic!("missing cell {experiment}/{label}"));
    assert_eq!(cell.status, CellStatus::Ok, "{experiment}/{label}");
    match cell.output.as_ref().expect("ok cell has output") {
        CellOutput::Table2(row) => (row.average_success_rate, row.l2_dissimilarity),
        CellOutput::Table4(row) => (row.attack_success_rate, row.l2_dissimilarity),
        other => panic!("unexpected output for {experiment}/{label}: {other:?}"),
    }
}

#[test]
fn scheduler_and_sequential_micro_grids_are_bit_identical() {
    let sequential = sequential_report();
    let one_worker = scheduler_report(1);
    let four_workers = scheduler_report(4);

    // Typed equality (exact f32 on every field) …
    assert_eq!(one_worker, sequential, "1-worker scheduler vs sequential");
    assert_eq!(four_workers, sequential, "4-worker scheduler vs sequential");
    // … and byte equality of the serialized results.json.
    assert_eq!(one_worker.to_json(), sequential.to_json());
    assert_eq!(four_workers.to_json(), sequential.to_json());
}

#[test]
fn micro_grid_matches_the_checked_in_golden_values() {
    let report = scheduler_report(1);
    let path = golden_path();

    if std::env::var_os("BLURNET_BLESS").is_some() {
        std::fs::create_dir_all(path.parent().expect("golden dir has a parent"))
            .expect("create golden dir");
        report.write_json(&path).expect("write golden file");
        eprintln!("blessed {}", path.display());
        return;
    }

    let golden_json = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); run BLURNET_BLESS=1 cargo test --test golden_repro",
            path.display()
        )
    });
    let golden: RunReport = serde_json::from_str(&golden_json).expect("golden file parses");

    // Exact comparison, field by field: every f32 must round-trip
    // unchanged through the JSON encoding and equal the current run's
    // value bit-for-bit (PartialEq on f32 is exact equality).
    assert_eq!(
        report, golden,
        "micro-grid results drifted from the golden reproduction values"
    );
    // And the serialized bytes match, so the golden file IS the
    // results.json the run would emit.
    assert_eq!(report.to_json(), golden_json);
}

#[test]
fn micro_grid_matches_the_old_per_table_entry_points() {
    // Belt and braces: the grid cells must equal what the original
    // table2::run_defense / table4::run_defense entry points produce for
    // the same zoo — the literal pre-scheduler code path.
    use blurnet::experiments::{table2, table4};
    use blurnet_defenses::DefenseKind;

    let report = scheduler_report(2);
    let mut zoo = ModelZoo::new(Scale::Smoke, SEED).unwrap();
    for defense in [
        DefenseKind::DepthwiseLinf {
            kernel: 5,
            alpha: 0.1,
        },
        DefenseKind::TotalVariation { alpha: 1e-4 },
    ] {
        let t2 = table2::run_defense(&mut zoo, &defense).unwrap();
        let t4 = table4::run_defense(&mut zoo, &defense).unwrap();
        let (sr2, l2_2) = cell_numbers(&report, "table2", &defense.label());
        let (sr4, l2_4) = cell_numbers(&report, "table4", &defense.label());
        assert_eq!(sr2, t2.average_success_rate, "{}", defense.label());
        assert_eq!(l2_2, t2.l2_dissimilarity, "{}", defense.label());
        assert_eq!(sr4, t4.attack_success_rate, "{}", defense.label());
        assert_eq!(l2_4, t4.l2_dissimilarity, "{}", defense.label());
    }
}
