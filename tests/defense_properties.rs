//! Property-based integration tests on the defense and attack invariants
//! that hold regardless of training: masks confine perturbations, filters
//! only remove energy, smoothing never changes tensor ranges, and the
//! regularizer gradients match their finite differences end-to-end.

use blurnet_defenses::filter_image;
use blurnet_nn::softmax_cross_entropy;
use blurnet_signal::{box_kernel, gaussian_kernel, total_variation};
use blurnet_tensor::Tensor;
use blurnet_test_support::{canned_sticker_mask, tiny_lisa_net, uniform_batch};
use proptest::prelude::*;

fn image_strategy(size: usize) -> impl Strategy<Value = Vec<f32>> {
    proptest::collection::vec(0.0f32..1.0, 3 * size * size)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Blurring never increases the total variation of any channel.
    #[test]
    fn blurring_never_increases_total_variation(data in image_strategy(16), kernel in prop_oneof![Just(3usize), Just(5)]) {
        let image = Tensor::from_vec(data, &[3, 16, 16]).unwrap();
        let blurred = filter_image(&image, kernel).unwrap();
        for ch in 0..3 {
            let before = total_variation(&image.channel(ch).unwrap()).unwrap();
            let after = total_variation(&blurred.channel(ch).unwrap()).unwrap();
            prop_assert!(after <= before + 1e-3, "channel {}: {} -> {}", ch, before, after);
        }
    }

    /// Blur kernels are doubly stochastic enough to preserve the mean of a
    /// constant image away from borders and never push values outside the
    /// input range.
    #[test]
    fn blurring_respects_value_range(data in image_strategy(12)) {
        let image = Tensor::from_vec(data, &[3, 12, 12]).unwrap();
        let blurred = filter_image(&image, 3).unwrap();
        prop_assert!(blurred.min().unwrap() >= image.min().unwrap() - 1e-5);
        prop_assert!(blurred.max().unwrap() <= image.max().unwrap() + 1e-5);
    }

    /// Sticker masks confine masked perturbations: applying a mask to any
    /// perturbation leaves non-masked pixels untouched.
    #[test]
    fn masked_perturbations_stay_on_the_sticker(data in image_strategy(16), scale in 0.1f32..1.0) {
        let mask = canned_sticker_mask();
        let image = Tensor::from_vec(data, &[3, 16, 16]).unwrap();
        // Broadcast the mask over channels and apply a scaled perturbation.
        let mut perturbed = image.clone();
        for ch in 0..3 {
            for y in 0..16 {
                for x in 0..16 {
                    if mask.get(&[y, x]).unwrap() > 0.5 {
                        let v = perturbed.get(&[ch, y, x]).unwrap();
                        perturbed.set(&[ch, y, x], (v + scale).min(1.0)).unwrap();
                    }
                }
            }
        }
        for ch in 0..3 {
            for y in 0..16 {
                for x in 0..16 {
                    if mask.get(&[y, x]).unwrap() < 0.5 {
                        prop_assert_eq!(
                            perturbed.get(&[ch, y, x]).unwrap(),
                            image.get(&[ch, y, x]).unwrap()
                        );
                    }
                }
            }
        }
    }

    /// Gaussian and box kernels always sum to one, regardless of size/sigma.
    #[test]
    fn kernels_are_normalized(k in prop_oneof![Just(3usize), Just(5), Just(7)], sigma in 0.3f32..3.0) {
        prop_assert!((box_kernel(k).sum() - 1.0).abs() < 1e-4);
        prop_assert!((gaussian_kernel(k, sigma).sum() - 1.0).abs() < 1e-4);
    }

    /// The classifier's loss gradient with respect to the input matches a
    /// finite-difference estimate through the whole network, for arbitrary
    /// inputs (the property every attack in this repo depends on).
    #[test]
    fn input_gradients_match_finite_differences(seed in 0u64..50, pixel in 0usize..(3 * 16 * 16)) {
        let mut net = tiny_lisa_net(seed);
        let image = uniform_batch(&[1, 3, 16, 16], 0.05, 0.95, !seed);
        let label = [3usize];
        let logits = net.forward(&image, true).unwrap();
        let (_, d_logits) = softmax_cross_entropy(&logits, &label).unwrap();
        let grad = net.backward(&d_logits).unwrap();

        let eps = 1e-2f32;
        let mut plus = image.clone();
        plus.data_mut()[pixel] += eps;
        let mut minus = image.clone();
        minus.data_mut()[pixel] -= eps;
        let (lp, _) = softmax_cross_entropy(&net.forward(&plus, false).unwrap(), &label).unwrap();
        let (lm, _) = softmax_cross_entropy(&net.forward(&minus, false).unwrap(), &label).unwrap();
        let numeric = (lp - lm) / (2.0 * eps);
        prop_assert!(
            (numeric - grad.data()[pixel]).abs() < 5e-2,
            "pixel {}: numeric {} vs analytic {}",
            pixel,
            numeric,
            grad.data()[pixel]
        );
    }
}
